package sim

import (
	"fmt"
	"sort"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/membership"
)

// Metrics is what one simulated run measured. Times are virtual milliseconds;
// everything here is deterministic given (scenario, knobs).
type Metrics struct {
	MakespanMS    float64 `json:"makespan_ms"`
	SetupMS       float64 `json:"setup_ms"`
	LevelP50MS    float64 `json:"level_p50_ms"`
	LevelP99MS    float64 `json:"level_p99_ms"`
	WastedHedgeMS float64 `json:"wasted_hedge_ms"`

	Hedges        int `json:"hedges"`
	HedgeWins     int `json:"hedge_wins"`
	Retries       int `json:"retries"`
	Failovers     int `json:"failovers"`
	Evictions     int `json:"evictions"`
	Resurrections int `json:"resurrections"`
	Reships       int `json:"reships"`
	Degraded      int `json:"degraded"`
	WarmAttaches  int `json:"warm_attaches"`
	Rebalances    int `json:"rebalances"`
	Expiries      int `json:"expiries"`
	Joins         int `json:"joins"`

	BytesShipped   int64 `json:"bytes_shipped"`
	BytesReshipped int64 `json:"bytes_reshipped"`
	RPCs           int64 `json:"rpcs"`
	Events         int64 `json:"events"`
}

// Result is one simulated run: the knobs it ran under, what it measured, and
// the full scheduling-decision stream (the same dist.Decision values the TCP
// runtime announces through Options.OnDecision — fidelity tests compare the
// two streams directly).
type Result struct {
	Knobs     Knobs
	Metrics   Metrics
	Decisions []dist.Decision
	Err       string
}

// simHedgeRecheck mirrors the runtime's adaptive-hedge re-check cadence.
const simHedgeRecheck = 2 * time.Millisecond

// inflightCall is one call being serviced by a worker; a crash mid-service
// aborts it (connection reset) instead of letting it reply.
type inflightCall struct {
	completeT *timer
	abort     func()
}

// simWorker is one modeled worker process.
type simWorker struct {
	id        int
	up        bool
	reachable bool
	slowMult  float64
	sched     *faults.Schedule
	calls     [3]int
	holds     map[int]bool
	rng       *RNG
	inflight  []*inflightCall
	announceT *timer
}

func (w *simWorker) dropInflight(ic *inflightCall) {
	for i, c := range w.inflight {
		if c == ic {
			w.inflight = append(w.inflight[:i], w.inflight[i+1:]...)
			return
		}
	}
}

// runner executes one scenario at one grid point. It is single-threaded:
// everything happens inside engine callbacks, so no locks and no
// nondeterminism.
type runner struct {
	e       *engine
	sc      Scenario
	k       Knobs
	topo    topoModel
	workers []*simWorker
	drng    *RNG // driver-side draws (degraded local evaluation)

	// Driver scheduling state, mirroring dist.Cluster.
	alive    []bool
	strikes  []int
	assign   []int
	partRows []int

	callTimeout time.Duration
	hbTimeout   time.Duration
	hbInterval  time.Duration

	// Membership (elastic) state, mirroring Registrar + ElasticCluster.
	elastic     bool
	lease       time.Duration
	leaseLimit  int
	member      []bool
	regRenewed  []bool
	regStrikes  []int
	rebalancing bool
	rebalPend   bool
	setupDone   bool

	decisions []dist.Decision
	levelDurs []time.Duration
	wasted    time.Duration
	m         Metrics

	done   bool
	failed error
}

// Run simulates one scenario at one grid point. The result is a pure
// function of (sc, knobs): same inputs, byte-identical outcome.
func Run(sc Scenario, k Knobs) Result {
	r := newRunner(sc, k)
	r.start()
	err := r.e.runUntil(func() bool { return r.done })
	if err == nil {
		err = r.failed
	}
	res := Result{Knobs: k, Metrics: r.metrics(), Decisions: r.decisions}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

func newRunner(sc Scenario, k Knobs) *runner {
	nW := sc.Workers
	nP := sc.Partitions
	if nP > sc.Rows {
		nP = sc.Rows
	}
	r := &runner{
		e:           &engine{},
		sc:          sc,
		k:           k,
		topo:        newTopoModel(sc.Topology),
		drng:        NewRNG(Mix64(sc.Seed, 0xd121)),
		alive:       make([]bool, nW),
		strikes:     make([]int, nW),
		assign:      make([]int, nP),
		partRows:    dist.PartitionSizes(sc.Rows, nP),
		callTimeout: k.CallTimeout(),
		hbInterval:  time.Duration(k.HeartbeatMS) * time.Millisecond,
		elastic:     sc.Membership != nil,
	}
	// Mirror dist.Options.withDefaults: the probe deadline falls back to the
	// call timeout, then 2s.
	r.hbTimeout = r.callTimeout
	if r.hbTimeout <= 0 {
		r.hbTimeout = 2 * time.Second
	}
	for wi := 0; wi < nW; wi++ {
		w := &simWorker{
			id:        wi,
			up:        true,
			reachable: true,
			slowMult:  1,
			holds:     make(map[int]bool),
			rng:       NewRNG(Mix64(sc.Seed, uint64(wi)+1)),
		}
		if sc.Service.StragglerProb > 0 && w.rng.Float64() < sc.Service.StragglerProb {
			w.slowMult = sc.Service.StragglerMult.Sample(w.rng)
			if w.slowMult < 1 {
				w.slowMult = 1
			}
		}
		r.workers = append(r.workers, w)
	}
	r.buildFaultSchedules()
	if r.elastic {
		r.lease, r.leaseLimit = sc.Membership.leaseConfig()
		if k.LeaseStrikes > 0 {
			r.leaseLimit = k.LeaseStrikes
		}
		r.member = make([]bool, nW)
		r.regRenewed = make([]bool, nW)
		r.regStrikes = make([]int, nW)
	} else {
		for wi := range r.alive {
			r.alive[wi] = true
		}
	}
	return r
}

func (r *runner) buildFaultSchedules() {
	f := r.sc.Faults
	var perWorker []*faults.Schedule
	if f != nil && len(f.Script) > 0 {
		perWorker = make([]*faults.Schedule, len(r.workers))
		for _, rule := range f.Script {
			if perWorker[rule.Worker] == nil {
				perWorker[rule.Worker] = faults.NewSchedule()
			}
			op, _ := faults.ParseOp(rule.Op) // validated in Scenario.Validate
			kind, _ := faults.ParseKind(rule.Kind)
			perWorker[rule.Worker].On(op, rule.Call, faults.Action{
				Kind:  kind,
				Delay: msToDur(rule.DelayMS),
			})
		}
	}
	for wi, w := range r.workers {
		if perWorker != nil && perWorker[wi] != nil {
			w.sched = perWorker[wi]
		} else if f != nil && f.Seeded != nil {
			s := f.Seeded
			w.sched = faults.Seeded(s.Seed+int64(wi), faults.Profile{
				DelayPerMille:       s.DelayPerMille,
				HangPerMille:        s.HangPerMille,
				CrashBeforePerMille: s.CrashBeforePerMille,
				CrashAfterPerMille:  s.CrashAfterPerMille,
				ShortPerMille:       s.ShortPerMille,
				CorruptPerMille:     s.CorruptPerMille,
				MaxDelay:            msToDur(s.MaxDelayMS),
			})
		}
	}
}

func (r *runner) start() {
	if f := r.sc.Faults; f != nil {
		for _, c := range f.Crashes {
			c := c
			r.e.at(msToDur(c.AtMS), func() { r.crashWorker(c.Worker) })
			if c.DownMS > 0 {
				r.e.at(msToDur(c.AtMS+c.DownMS), func() { r.recoverWorker(c.Worker) })
			}
		}
		for _, fl := range f.Flaps {
			fl := fl
			var cycle func()
			cycle = func() {
				if r.done {
					return
				}
				r.recoverWorker(fl.Worker)
				r.e.after(msToDur(fl.UpMS), func() { r.crashWorker(fl.Worker) })
				r.e.after(msToDur(fl.PeriodMS), cycle)
			}
			r.e.at(msToDur(fl.FromMS), cycle)
		}
		for _, sp := range f.Partitions {
			sp := sp
			r.e.at(msToDur(sp.AtMS), func() { r.workers[sp.Worker].reachable = false })
			if sp.HealMS > 0 {
				r.e.at(msToDur(sp.AtMS+sp.HealMS), func() { r.workers[sp.Worker].reachable = true })
			}
		}
	}
	if r.elastic {
		// The fleet self-forms: workers announce from t=0, registrar scans
		// every lease, and the job starts one lease in, once the first scan
		// has seen the fleet — the same warm-up a real driver gets from
		// following the registrar before Setup.
		for wi := range r.workers {
			r.scheduleAnnounce(wi)
		}
		r.scheduleScan()
		r.e.at(r.lease, r.setup)
	} else {
		r.e.at(0, r.setup)
	}
}

func (r *runner) fail(err error) {
	if r.failed == nil {
		r.failed = err
	}
	r.done = true
}

func (r *runner) decide(d dist.Decision) { r.decisions = append(r.decisions, d) }

// ---- fault window transitions ----

func (r *runner) crashWorker(wi int) {
	w := r.workers[wi]
	if !w.up {
		return
	}
	w.up = false
	// A crashed process loses its partitions (restart amnesia) and resets
	// every in-flight connection.
	w.holds = make(map[int]bool)
	inflight := w.inflight
	w.inflight = nil
	for _, ic := range inflight {
		ic.abort()
	}
	if w.announceT != nil {
		w.announceT.stop()
		w.announceT = nil
	}
}

func (r *runner) recoverWorker(wi int) {
	w := r.workers[wi]
	if w.up {
		return
	}
	w.up = true
	if r.elastic {
		r.scheduleAnnounce(wi)
	}
}

// ---- the RPC model ----

// sendRPC models one driver→worker call: one-way latency out, fault
// resolution through the worker's faults.Schedule (the same schedule type
// the in-process chaos wrapper uses), service time, and the reply hop —
// bounded by deadline when one is set. cb runs exactly once.
//
// service reports the work's duration and whether it succeeds (a worker
// asked to Eval a partition it does not hold fails fast); exec applies the
// work's state change (it runs even when the driver has already given up —
// a timed-out Load may still land on the worker).
func (r *runner) sendRPC(wi int, op faults.Op, deadline time.Duration,
	service func(*simWorker) (time.Duration, bool), exec func(*simWorker), cb func(ok bool)) {
	w := r.workers[wi]
	r.m.RPCs++
	settled := false
	var deadT *timer
	settle := func(ok bool) {
		if settled {
			return
		}
		settled = true
		if deadT != nil {
			deadT.stop()
		}
		cb(ok)
	}
	if deadline > 0 {
		deadT = r.e.after(deadline, func() { settle(false) })
	}
	r.e.after(r.topo.oneWay(wi, w.rng), func() {
		if !w.up {
			// Connection refused: a fast error, one return hop later.
			r.e.after(r.topo.oneWay(wi, w.rng), func() { settle(false) })
			return
		}
		if !w.reachable {
			return // blackholed: only the caller's deadline releases it
		}
		a := w.sched.Action(op, w.calls[op])
		w.calls[op]++
		switch a.Kind {
		case faults.Hang:
			return
		case faults.CrashBefore:
			r.e.after(r.topo.oneWay(wi, w.rng), func() { settle(false) })
			return
		}
		svc, ok := service(w)
		if a.Kind == faults.Delay {
			svc += a.Delay
		}
		ic := &inflightCall{}
		ic.completeT = r.e.after(svc, func() {
			w.dropInflight(ic)
			if ok {
				exec(w)
			}
			bad := !ok
			switch a.Kind {
			case faults.CrashAfter:
				bad = true
			case faults.ShortReply, faults.CorruptReply:
				// The reply arrives malformed and driver-side validation
				// rejects it — except on Load, whose reply carries no
				// statistics to corrupt.
				if op != faults.OpLoad {
					bad = true
				}
			}
			r.e.after(r.topo.oneWay(wi, w.rng), func() { settle(!bad) })
		})
		ic.abort = func() {
			ic.completeT.stop()
			r.e.after(r.topo.oneWay(wi, w.rng), func() { settle(false) })
		}
		w.inflight = append(w.inflight, ic)
	})
}

// partBytes is the wire size of one partition.
func (r *runner) partBytes(p int) int64 {
	return int64(r.partRows[p]) * int64(r.sc.BytesPerRow)
}

// shipTime is how long one partition takes to transfer at the scenario
// bandwidth.
func (r *runner) shipTime(p int) time.Duration {
	sec := float64(r.partBytes(p)) / (r.sc.BandwidthMBps * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// sendLoad ships partition p to worker wi. reship classifies the bytes for
// the report (initial placement vs recovery traffic).
func (r *runner) sendLoad(wi, p int, deadline time.Duration, reship bool, cb func(ok bool)) {
	r.sendRPC(wi, faults.OpLoad, deadline,
		func(*simWorker) (time.Duration, bool) { return r.shipTime(p), true },
		func(w *simWorker) {
			w.holds[p] = true
			if reship {
				r.m.BytesReshipped += r.partBytes(p)
			} else {
				r.m.BytesShipped += r.partBytes(p)
			}
		},
		cb)
}

// evalServiceTime is the compute cost of one Eval of cands candidates over
// partition p on worker w.
func (r *runner) evalServiceTime(w *simWorker, p, cands int) time.Duration {
	ns := float64(cands) * float64(r.partRows[p]) * r.sc.Service.PerPairNS.Sample(w.rng) * w.slowMult
	if !r.sc.Service.TransientMult.IsZero() {
		ns *= r.sc.Service.TransientMult.Sample(w.rng)
	}
	return time.Duration(ns)
}

func (r *runner) sendEval(wi, p, cands int, cb func(ok bool)) {
	r.sendRPC(wi, faults.OpEval, r.callTimeout,
		func(w *simWorker) (time.Duration, bool) {
			if !w.holds[p] {
				// "worker holds no partition p": an immediate error reply,
				// the amnesiac-restart signature the chain reloads around.
				return 0, false
			}
			return r.evalServiceTime(w, p, cands), true
		},
		func(*simWorker) {},
		cb)
}

func (r *runner) sendPing(wi int, cb func(ok bool)) {
	r.sendRPC(wi, faults.OpPing, r.hbTimeout,
		func(*simWorker) (time.Duration, bool) { return 0, true },
		func(*simWorker) {},
		cb)
}

// ---- setup ----

// setup mirrors Cluster.Setup: partitions ship serially to their placed
// workers (k mod W statically, the membership ring elastically), failing
// over to the next live worker when a load errors.
func (r *runner) setup() {
	setupStart := r.e.now
	r.setupPart(0, setupStart)
}

func (r *runner) placeInitial(p int) int {
	if r.elastic {
		return r.ringOwner(p)
	}
	if len(r.workers) == 0 {
		return -1
	}
	return p % len(r.workers)
}

func (r *runner) setupPart(p int, setupStart time.Duration) {
	if p >= len(r.assign) {
		r.m.SetupMS = durMS(r.e.now - setupStart)
		r.setupDone = true
		r.startHeartbeat()
		r.runLevel(0)
		return
	}
	wi := r.placeInitial(p)
	if wi >= 0 && !r.alive[wi] {
		wi = dist.NextLiveWorker(r.alive, -1)
	}
	r.setupLoad(p, wi, setupStart)
}

func (r *runner) setupLoad(p, wi int, setupStart time.Duration) {
	if wi < 0 {
		if !r.sc.LocalFallback && !r.elastic {
			r.fail(fmt.Errorf("sim: no live worker accepts partition %d", p))
			return
		}
		r.assign[p] = -1 // held on the driver until someone takes it
		r.setupPart(p+1, setupStart)
		return
	}
	r.sendLoad(wi, p, r.callTimeout, false, func(ok bool) {
		if ok {
			r.assign[p] = wi
			r.setupPart(p+1, setupStart)
			return
		}
		r.markDead(wi)
		r.setupLoad(p, dist.NextLiveWorker(r.alive, -1), setupStart)
	})
}

func (r *runner) markDead(wi int) {
	r.alive[wi] = false
}

// ---- level evaluation: the chain + hedge state machines ----

// chain is one evalPartitionChain in flight: evaluate on the assigned
// worker, retry in place after a reload (the amnesiac-worker path), mark
// dead and fail over, bounded by the worker count, degrading to the driver
// when the fleet is gone. It mirrors the runtime chain decision for
// decision.
type chain struct {
	p, cands  int
	avoid     int
	attempt   int
	cancelled bool
	onDone    func(winner int, ok bool)
}

func (r *runner) localFallback() bool { return r.sc.LocalFallback || r.elastic }

func (r *runner) chainStep(ch *chain) {
	if ch.cancelled || r.done {
		return
	}
	if ch.attempt > len(r.workers) {
		if r.localFallback() {
			r.degrade(ch)
			return
		}
		ch.onDone(-1, false)
		return
	}
	wi := r.assign[ch.p]
	if wi >= 0 && r.alive[wi] && wi != ch.avoid {
		r.sendEval(wi, ch.p, ch.cands, func(ok bool) {
			if ch.cancelled || r.done {
				return
			}
			if ok {
				ch.onDone(wi, true)
				return
			}
			// Retry in place: reload the partition on the same worker once
			// before declaring it dead, so a restarted worker rejoins the run.
			r.m.Retries++
			r.decide(dist.Decision{Kind: dist.DecideRetryInPlace, Part: ch.p, Worker: wi, Target: -1})
			r.sendLoad(wi, ch.p, r.callTimeout, true, func(ok bool) {
				if ch.cancelled || r.done {
					return
				}
				if ok {
					r.sendEval(wi, ch.p, ch.cands, func(ok bool) {
						if ch.cancelled || r.done {
							return
						}
						if ok {
							ch.onDone(wi, true)
							return
						}
						r.markDead(wi)
						r.failoverStep(ch)
					})
					return
				}
				r.markDead(wi)
				r.failoverStep(ch)
			})
		})
		return
	}
	r.failoverStep(ch)
}

func (r *runner) failoverStep(ch *chain) {
	next := dist.NextLiveWorker(r.alive, ch.avoid)
	if next < 0 {
		if r.localFallback() {
			r.degrade(ch)
			return
		}
		ch.onDone(-1, false)
		return
	}
	// A hedge chain's first reroute is the hedge picking a worker other than
	// the straggler, not a failover.
	if ch.avoid < 0 || ch.attempt > 0 {
		r.m.Failovers++
		r.m.Retries++
		r.decide(dist.Decision{Kind: dist.DecideFailover, Part: ch.p, Worker: r.assign[ch.p], Target: next})
	}
	r.assign[ch.p] = next
	r.sendLoad(next, ch.p, r.callTimeout, true, func(ok bool) {
		if ch.cancelled || r.done {
			return
		}
		ch.attempt++
		if !ok {
			r.markDead(next)
		}
		r.chainStep(ch)
	})
}

// degrade evaluates the partition on the driver — same cost model, no
// straggler multiplier, no network.
func (r *runner) degrade(ch *chain) {
	r.m.Degraded++
	r.decide(dist.Decision{Kind: dist.DecideDegrade, Part: ch.p, Worker: -1, Target: -1})
	ns := float64(ch.cands) * float64(r.partRows[ch.p]) * r.sc.Service.PerPairNS.Sample(r.drng)
	r.e.after(time.Duration(ns), func() {
		if ch.cancelled || r.done {
			return
		}
		ch.onDone(-1, true)
	})
}

// hedgedEval is one evalPartitionHedged in flight: a primary chain, a
// straggler threshold watched in virtual time, at most one speculative
// duplicate chain avoiding the straggler, first well-formed result wins,
// loser cancelled whole.
type hedgedEval struct {
	r        *runner
	hc       *dist.HedgePolicy
	p, cands int
	start    time.Duration

	primary, hedge *chain
	primaryFailed  bool
	hedgedAt       time.Duration
	hedged         bool
	checkT         *timer
	finished       bool
	onDone         func(ok bool)
}

func (r *runner) startHedged(hc *dist.HedgePolicy, p, cands int, onDone func(ok bool)) {
	h := &hedgedEval{r: r, hc: hc, p: p, cands: cands, start: r.e.now, onDone: onDone}
	h.primary = &chain{p: p, cands: cands, avoid: -1, onDone: h.primaryDone}
	r.chainStep(h.primary)
	h.armCheck()
}

func (h *hedgedEval) armCheck() {
	if h.hc == nil || h.finished || h.hedge != nil {
		return
	}
	if th, ok := h.hc.Threshold(); ok {
		at := h.start + th
		if at < h.r.e.now {
			at = h.r.e.now
		}
		h.checkT = h.r.e.at(at, h.check)
	} else if h.hc.Adaptive() {
		h.checkT = h.r.e.after(simHedgeRecheck, h.check)
	}
}

func (h *hedgedEval) check() {
	if h.finished || h.hedge != nil {
		return
	}
	th, ok := h.hc.Threshold()
	if !ok || h.r.e.now-h.start < th {
		h.armCheck()
		return
	}
	straggler := h.r.assign[h.p]
	if dist.NextLiveWorker(h.r.alive, straggler) < 0 {
		// Nowhere to hedge; keep waiting on the primary.
		h.checkT = h.r.e.after(simHedgeRecheck, h.check)
		return
	}
	h.r.m.Hedges++
	h.r.decide(dist.Decision{Kind: dist.DecideHedge, Part: h.p, Worker: straggler, Target: -1})
	h.hedged = true
	h.hedgedAt = h.r.e.now
	h.hedge = &chain{p: h.p, cands: h.cands, avoid: straggler, onDone: h.hedgeDone}
	h.r.chainStep(h.hedge)
}

func (h *hedgedEval) settle(winner int, hedgeWon bool) {
	h.finished = true
	if h.checkT != nil {
		h.checkT.stop()
	}
	if h.hedged {
		// Both sides computed redundantly from the hedge launch to now;
		// that interval is the speculative waste, whoever won.
		h.r.wasted += h.r.e.now - h.hedgedAt
	}
	h.hc.Record(h.r.e.now - h.start)
	// The runtime records the winner even when it is the driver (-1, the
	// degraded path): the next level re-derives placement from there.
	h.r.assign[h.p] = winner
	if hedgeWon {
		h.r.m.HedgeWins++
		h.r.decide(dist.Decision{Kind: dist.DecideHedgeWin, Part: h.p, Worker: winner, Target: -1})
	}
	h.onDone(true)
}

func (h *hedgedEval) primaryDone(winner int, ok bool) {
	if h.finished {
		return
	}
	if ok {
		if h.hedge != nil {
			h.hedge.cancelled = true
		}
		h.settle(winner, false)
		return
	}
	if h.hedge == nil {
		h.finished = true
		if h.checkT != nil {
			h.checkT.stop()
		}
		h.onDone(false)
		return
	}
	h.primaryFailed = true
	h.primary = nil // the hedge may still succeed
}

func (h *hedgedEval) hedgeDone(winner int, ok bool) {
	if h.finished {
		return
	}
	if ok {
		if h.primary != nil {
			h.primary.cancelled = true
		}
		h.settle(winner, true)
		return
	}
	if h.primaryFailed {
		h.finished = true
		h.onDone(false)
		return
	}
	h.hedge = nil // the primary may still succeed; resume watching
	h.armCheck()
}

// runLevel fans one level's evaluation over every partition concurrently
// (one hedged state machine each) and merges at the level barrier, exactly
// like Cluster.Eval.
func (r *runner) runLevel(l int) {
	if l >= len(r.sc.Levels) {
		r.m.MakespanMS = durMS(r.e.now)
		r.done = true
		return
	}
	cands := r.sc.Levels[l]
	nParts := len(r.assign)
	hc := dist.NewHedgePolicy(
		time.Duration(r.k.HedgeAfterMS)*time.Millisecond,
		r.k.HedgeMult,
		nParts,
	)
	levelStart := r.e.now
	remaining := nParts
	for p := 0; p < nParts; p++ {
		r.startHedged(hc, p, cands, func(ok bool) {
			if r.done {
				return
			}
			if !ok {
				r.fail(fmt.Errorf("sim: level %d: partition failed on every worker", l))
				return
			}
			remaining--
			if remaining == 0 {
				r.levelDurs = append(r.levelDurs, r.e.now-levelStart)
				r.runLevel(l + 1)
			}
		})
	}
}

// ---- heartbeat ----

func (r *runner) startHeartbeat() {
	if r.hbInterval <= 0 {
		return
	}
	r.e.after(r.hbInterval, r.heartbeatTick)
}

func (r *runner) heartbeatTick() {
	if r.done {
		return
	}
	tickStart := r.e.now
	r.probeNext(0, func() {
		if r.done {
			return
		}
		next := tickStart + r.hbInterval
		if next < r.e.now {
			next = r.e.now
		}
		r.e.at(next, r.heartbeatTick)
	})
}

// probeNext pings workers sequentially in index order (the runtime's probe
// loop), applying the shared ProbeStep strike discipline to each answer.
func (r *runner) probeNext(wi int, cb func()) {
	if wi >= len(r.workers) {
		cb()
		return
	}
	r.sendPing(wi, func(ok bool) {
		newAlive, newStrikes, verdict := dist.ProbeStep(r.alive[wi], r.strikes[wi], r.k.Strikes, ok)
		r.alive[wi], r.strikes[wi] = newAlive, newStrikes
		switch verdict {
		case dist.ProbeResurrect:
			r.m.Resurrections++
			r.decide(dist.Decision{Kind: dist.DecideResurrect, Part: -1, Worker: wi, Target: -1})
		case dist.ProbeEvict:
			r.m.Evictions++
			r.decide(dist.Decision{Kind: dist.DecideEvict, Part: -1, Worker: wi, Target: -1, Strikes: newStrikes})
			moves := dist.ReshipPlan(r.assign, r.alive, wi)
			r.reshipNext(wi, moves, 0, func() { r.probeNext(wi+1, cb) })
			return
		}
		r.probeNext(wi+1, cb)
	})
}

// reshipNext applies one ReshipPlan move at a time, like reshipFrom: each
// load is bounded by the probe deadline, and a failed re-ship leaves the
// assignment for the mid-Eval failover path.
func (r *runner) reshipNext(dead int, moves [][2]int, i int, cb func()) {
	if i >= len(moves) {
		cb()
		return
	}
	p, target := moves[i][0], moves[i][1]
	r.sendLoad(target, p, r.hbTimeout, true, func(ok bool) {
		if ok {
			r.m.Reships++
			r.decide(dist.Decision{Kind: dist.DecideReship, Part: p, Worker: dead, Target: target})
			r.assign[p] = target
		}
		r.reshipNext(dead, moves, i+1, cb)
	})
}

// ---- elastic membership: announcers, registrar scans, ring rebalance ----

func (r *runner) memberID(wi int) string { return fmt.Sprintf("w%04d", wi) }

func (r *runner) scheduleAnnounce(wi int) {
	w := r.workers[wi]
	if w.announceT != nil {
		w.announceT.stop()
	}
	w.announceT = r.e.after(0, func() { r.announceSend(wi) })
}

// announceSend is one Announcer renewal: it reaches the registrar one hop
// later (when the network allows) and the worker re-announces at half the
// lease, the Announcer discipline.
func (r *runner) announceSend(wi int) {
	w := r.workers[wi]
	if !w.up || r.done {
		return
	}
	if w.reachable {
		r.e.after(r.topo.oneWay(wi, w.rng), func() { r.announceArrive(wi) })
	}
	w.announceT = r.e.after(r.lease/2, func() { r.announceSend(wi) })
}

func (r *runner) announceArrive(wi int) {
	if r.done {
		return
	}
	r.regRenewed[wi] = true
	r.regStrikes[wi] = 0
	if !r.member[wi] {
		r.member[wi] = true
		r.m.Joins++
		if !r.alive[wi] {
			if r.setupDone {
				r.m.Resurrections++
				r.decide(dist.Decision{Kind: dist.DecideResurrect, Part: -1, Worker: wi, Target: -1})
			}
			r.alive[wi] = true
			r.strikes[wi] = 0
		}
		r.viewChanged()
	}
}

func (r *runner) scheduleScan() {
	r.e.after(r.lease, r.registrarScan)
}

// registrarScan is one lease expiry sweep over the member table, the
// Registrar.Tick discipline via the shared membership.LeaseStep transition.
func (r *runner) registrarScan() {
	if r.done {
		return
	}
	changed := false
	for wi := range r.workers {
		if !r.member[wi] {
			continue
		}
		strikes, expired := membership.LeaseStep(r.regRenewed[wi], r.regStrikes[wi], r.leaseLimit)
		r.regRenewed[wi] = false
		r.regStrikes[wi] = strikes
		if expired {
			r.member[wi] = false
			r.m.Expiries++
			r.alive[wi] = false
			changed = true
		}
	}
	if changed {
		r.viewChanged()
	}
	r.scheduleScan()
}

// ringOwner maps partition p to its current ring owner's worker slot, or -1
// with no members — the ElasticCluster placement function.
func (r *runner) ringOwner(p int) int {
	var ids []string
	for wi := range r.workers {
		if r.member[wi] {
			ids = append(ids, r.memberID(wi))
		}
	}
	if len(ids) == 0 {
		return -1
	}
	ring := membership.BuildRing(ids, 0)
	id, ok := ring.Owner(membership.PartitionKey(r.sc.Seed, len(r.assign), p))
	if !ok {
		return -1
	}
	var wi int
	fmt.Sscanf(id, "w%04d", &wi)
	return wi
}

// viewChanged rebalances partition placement onto the new ring, one move at
// a time: warm re-attach when the new owner still holds the partition,
// otherwise a ship. A view change mid-rebalance queues one more pass.
func (r *runner) viewChanged() {
	if !r.setupDone {
		return // placement happens at setup; pre-setup churn only shapes the ring
	}
	if r.rebalancing {
		r.rebalPend = true
		return
	}
	r.rebalancing = true
	r.rebalancePart(0)
}

func (r *runner) rebalancePart(p int) {
	if r.done {
		r.rebalancing = false
		return
	}
	if p >= len(r.assign) {
		r.rebalancing = false
		if r.rebalPend {
			r.rebalPend = false
			r.viewChanged()
		}
		return
	}
	desired := r.ringOwner(p)
	cur := r.assign[p]
	if desired < 0 || desired == cur {
		r.rebalancePart(p + 1)
		return
	}
	if r.workers[desired].holds[p] {
		r.m.WarmAttaches++
		r.decide(dist.Decision{Kind: dist.DecideWarmAttach, Part: p, Worker: desired, Target: -1})
		r.assign[p] = desired
		r.rebalancePart(p + 1)
		return
	}
	r.sendLoad(desired, p, r.hbTimeout, true, func(ok bool) {
		if ok {
			r.m.Rebalances++
			r.decide(dist.Decision{Kind: dist.DecideRebalance, Part: p, Worker: cur, Target: desired})
			r.assign[p] = desired
		}
		r.rebalancePart(p + 1)
	})
}

// ---- metrics ----

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (r *runner) metrics() Metrics {
	m := r.m
	m.WastedHedgeMS = durMS(r.wasted)
	if len(r.levelDurs) > 0 {
		sorted := append([]time.Duration(nil), r.levelDurs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m.LevelP50MS = durMS(percentile(sorted, 50))
		m.LevelP99MS = durMS(percentile(sorted, 99))
	}
	m.Events = r.e.nSteps
	return m
}

// percentile picks the nearest-rank percentile of an ascending slice.
func percentile(sorted []time.Duration, pct int) time.Duration {
	rank := (len(sorted)*pct + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
