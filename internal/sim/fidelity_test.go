package sim

import (
	"context"
	"sync"
	"testing"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/matrix"
)

// The fidelity tests run the same fault script twice — once through a real
// in-process dist.Cluster (wall clock, goroutines, the faults chaos wrapper)
// and once through the simulator (virtual time) — and require the two
// scheduling-decision streams to be identical. This is the load-bearing
// guarantee of internal/sim: both sides execute the same policy code
// (HedgePolicy, ProbeStep, NextLiveWorker, ReshipPlan), so a knob tuned in
// simulation means the same thing on the TCP runtime.

// realDecisions runs one level evaluation on a real in-process cluster with
// sched wrapped around worker `faulty`, and returns the decision stream.
func realDecisions(t *testing.T, nWorkers int, sched map[int]*faults.Schedule, opts dist.Options, evalRows int) []dist.Decision {
	t.Helper()
	var mu sync.Mutex
	var ds []dist.Decision
	opts.OnDecision = func(d dist.Decision) {
		mu.Lock()
		ds = append(ds, d)
		mu.Unlock()
	}
	workers := make([]dist.Worker, nWorkers)
	for i := range workers {
		var w dist.Worker = &dist.InProcessWorker{}
		if s, ok := sched[i]; ok {
			w = faults.Wrap(w, s)
		}
		workers[i] = w
	}
	cl, err := dist.NewClusterOpts(workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dense := make([]float64, evalRows)
	ev := make([]float64, evalRows)
	for i := range dense {
		dense[i] = 1
		ev[i] = 1
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(evalRows, 1, dense))
	if err := cl.Setup(context.Background(), x, ev); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.Eval(context.Background(), [][]int{{0}}, 1); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	mu.Lock()
	defer mu.Unlock()
	return ds
}

// simDecisions runs the equivalent scenario through the simulator.
func simDecisions(t *testing.T, sc Scenario, k Knobs) []dist.Decision {
	t.Helper()
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	res := Run(sc, k)
	if res.Err != "" {
		t.Fatalf("sim run failed: %s", res.Err)
	}
	return res.Decisions
}

func requireSameDecisions(t *testing.T, real, sim []dist.Decision) {
	t.Helper()
	if len(real) != len(sim) {
		t.Fatalf("decision streams differ:\nreal: %v\nsim:  %v", real, sim)
	}
	for i := range real {
		if real[i] != sim[i] {
			t.Fatalf("decision %d differs: real %v, sim %v\nreal: %v\nsim:  %v",
				i, real[i], sim[i], real, sim)
		}
	}
}

// fidelityScenario is the shared scaffolding: N workers, N partitions, one
// row per partition region, negligible latency and service cost so only the
// scripted faults shape the timeline.
func fidelityScenario(workers int, script []ScriptRule) Scenario {
	return Scenario{
		SchemaVersion: 1,
		Name:          "fidelity",
		Seed:          1,
		Workers:       workers,
		Partitions:    workers,
		Rows:          2 * workers,
		BytesPerRow:   8,
		BandwidthMBps: 1000,
		Levels:        []int{1},
		Topology:      Topology{Kind: "star", LocalMS: Dist{Value: 0.05}},
		Service:       Service{PerPairNS: Dist{Value: 1000}},
		Faults:        &FaultPlan{Script: script},
	}
}

// TestFidelityFailover: worker 1's partition crashes on eval, the in-place
// reload crashes too, so the partition fails over to worker 0. Both sides
// must report exactly [retry-in-place p1 w1, failover p1 w1→w0].
func TestFidelityFailover(t *testing.T) {
	sched := faults.NewSchedule().
		On(faults.OpEval, 0, faults.Action{Kind: faults.CrashBefore}).
		On(faults.OpLoad, 1, faults.Action{Kind: faults.CrashBefore})
	real := realDecisions(t, 3, map[int]*faults.Schedule{1: sched}, dist.Options{
		Partitions: 3,
	}, 6)

	sim := simDecisions(t, fidelityScenario(3, []ScriptRule{
		{Worker: 1, Op: "eval", Call: 0, Kind: "crash-before"},
		{Worker: 1, Op: "load", Call: 1, Kind: "crash-before"},
	}), Knobs{CallTimeoutMS: 2000})

	want := []dist.Decision{
		{Kind: dist.DecideRetryInPlace, Part: 1, Worker: 1, Target: -1},
		{Kind: dist.DecideFailover, Part: 1, Worker: 1, Target: 0},
	}
	requireSameDecisions(t, real, want)
	requireSameDecisions(t, real, sim)
}

// TestFidelityHedge: worker 1 straggles 300ms on its partition; with a 30ms
// fixed hedge threshold the duplicate runs on worker 0 and wins. Both sides
// must report exactly [hedge p1 w1, hedge-win p1 w0].
func TestFidelityHedge(t *testing.T) {
	sched := faults.NewSchedule().
		On(faults.OpEval, 0, faults.Action{Kind: faults.Delay, Delay: 300 * time.Millisecond})
	real := realDecisions(t, 2, map[int]*faults.Schedule{1: sched}, dist.Options{
		Partitions: 2,
		HedgeDelay: 30 * time.Millisecond,
	}, 4)

	sim := simDecisions(t, fidelityScenario(2, []ScriptRule{
		{Worker: 1, Op: "eval", Call: 0, Kind: "delay", DelayMS: 300},
	}), Knobs{CallTimeoutMS: 2000, HedgeAfterMS: 30})

	want := []dist.Decision{
		{Kind: dist.DecideHedge, Part: 1, Worker: 1, Target: -1},
		{Kind: dist.DecideHedgeWin, Part: 1, Worker: 0, Target: -1},
	}
	requireSameDecisions(t, real, want)
	requireSameDecisions(t, real, sim)
}

// TestFidelityEviction: worker 1 answers its eval but then goes silent on
// every probe while worker 0 pins the level open; two 20ms strikes later the
// heartbeat evicts it and proactively re-ships its partition. Both sides
// must report exactly [evict w1 strikes=2, reship p1 w1→w0].
func TestFidelityEviction(t *testing.T) {
	w0 := faults.NewSchedule().
		On(faults.OpEval, 0, faults.Action{Kind: faults.Delay, Delay: 250 * time.Millisecond})
	w1 := faults.NewSchedule()
	for call := 0; call < 20; call++ {
		w1.On(faults.OpPing, call, faults.Action{Kind: faults.CrashBefore})
	}
	real := realDecisions(t, 2, map[int]*faults.Schedule{0: w0, 1: w1}, dist.Options{
		Partitions:        2,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatStrikes:  2,
	}, 4)

	script := []ScriptRule{
		{Worker: 0, Op: "eval", Call: 0, Kind: "delay", DelayMS: 250},
	}
	for call := 0; call < 20; call++ {
		script = append(script, ScriptRule{Worker: 1, Op: "ping", Call: call, Kind: "crash-before"})
	}
	sim := simDecisions(t, fidelityScenario(2, script), Knobs{
		CallTimeoutMS: 2000, HeartbeatMS: 20, Strikes: 2,
	})

	want := []dist.Decision{
		{Kind: dist.DecideEvict, Part: -1, Worker: 1, Target: -1, Strikes: 2},
		{Kind: dist.DecideReship, Part: 1, Worker: 1, Target: 0},
	}
	requireSameDecisions(t, real, want)
	requireSameDecisions(t, real, sim)
}
