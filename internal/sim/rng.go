// Package sim is a deterministic discrete-event simulator for the Dist-PFor
// scheduling stack: it models 100–1000 workers with configurable latency,
// straggler, and failure distributions over star or two-tier rack
// topologies, and drives the *real* scheduling policies — dist.HedgePolicy,
// dist.ProbeStep, dist.NextLiveWorker, dist.ReshipPlan, dist.PartitionSizes,
// membership.Ring placement, membership.LeaseStep — in virtual time, so the
// knobs the TCP runtime exposes (-hedge-mult, -heartbeat, strikes, …) can be
// tuned with evidence at fleet scale instead of intuition.
//
// Everything is a pure function of the scenario and its seed: there is no
// wall clock, no goroutine nondeterminism, and no map-order dependence
// anywhere in a run, so the same scenario file and seed produce a
// byte-identical report (cmd/slsim), and CI pins that property.
package sim

import (
	"fmt"
	"math"
)

// RNG is a splitmix64 pseudo-random stream: tiny, fast, and with full-period
// 64-bit state, so every simulated quantity derives from the scenario seed
// alone. The same finalizer already drives the membership ring's point
// hashing.
type RNG struct{ state uint64 }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 advances the stream (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal draw via Box–Muller. No spare value is
// cached: one draw always consumes exactly two uniforms, which keeps the
// stream position a pure function of the draw count.
func (r *RNG) Norm() float64 {
	// Guard the log: Float64 can return exactly 0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Mix64 folds a stream ID into a seed, giving every simulated worker its own
// decorrelated substream (same avalanche finalizer as splitmix64).
func Mix64(seed, stream uint64) uint64 {
	x := seed ^ (stream * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Dist is one scalar distribution, declaratively specified in scenario
// files. Supported kinds:
//
//   - "constant": always Value (an omitted kind with all-zero params is the
//     constant 0).
//   - "uniform": uniform in [Min, Max].
//   - "lognormal": exp(Mu + Sigma·N(0,1)) — the canonical service-time shape.
//   - "pareto": Scale · U^(-1/Alpha), the heavy straggler tail (Alpha > 0;
//     smaller Alpha = heavier tail).
type Dist struct {
	Kind  string  `json:"kind,omitempty"`
	Value float64 `json:"value,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// IsZero reports whether the distribution was omitted entirely.
func (d Dist) IsZero() bool { return d == Dist{} }

// Validate checks the parameters for the declared kind.
func (d Dist) Validate() error {
	switch d.Kind {
	case "", "constant":
		if d.Value < 0 {
			return fmt.Errorf("constant distribution with negative value %v", d.Value)
		}
	case "uniform":
		if d.Min < 0 || d.Max < d.Min {
			return fmt.Errorf("uniform distribution needs 0 <= min <= max, got [%v, %v]", d.Min, d.Max)
		}
	case "lognormal":
		if d.Sigma < 0 {
			return fmt.Errorf("lognormal distribution with negative sigma %v", d.Sigma)
		}
	case "pareto":
		if d.Scale <= 0 || d.Alpha <= 0 {
			return fmt.Errorf("pareto distribution needs scale > 0 and alpha > 0, got scale=%v alpha=%v", d.Scale, d.Alpha)
		}
	default:
		return fmt.Errorf("unknown distribution kind %q", d.Kind)
	}
	return nil
}

// Sample draws one value. Draws are never negative.
func (d Dist) Sample(r *RNG) float64 {
	switch d.Kind {
	case "uniform":
		return d.Min + (d.Max-d.Min)*r.Float64()
	case "lognormal":
		return math.Exp(d.Mu + d.Sigma*r.Norm())
	case "pareto":
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return d.Scale * math.Pow(u, -1/d.Alpha)
	default: // constant
		return d.Value
	}
}
