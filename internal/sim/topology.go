package sim

import "time"

// topoModel samples one-way driver↔worker message latency for a scenario
// topology. The driver sits in rack 0 of a two-tier topology; a message to a
// worker in another rack pays the local hop plus a cross-rack spine hop.
type topoModel struct {
	kind  string
	racks int
	local Dist
	cross Dist
}

func newTopoModel(t Topology) topoModel {
	return topoModel{kind: t.Kind, racks: t.Racks, local: t.LocalMS, cross: t.CrossMS}
}

// rack returns the rack a worker lives in.
func (t topoModel) rack(worker int) int {
	if t.kind != "two-tier" || t.racks <= 0 {
		return 0
	}
	return worker % t.racks
}

// oneWay samples the one-way latency of one message between the driver and
// worker, drawing from r (the worker's RNG substream, so latency draws stay
// decorrelated across workers).
func (t topoModel) oneWay(worker int, r *RNG) time.Duration {
	ms := t.local.Sample(r)
	if t.rack(worker) != 0 {
		ms += t.cross.Sample(r)
	}
	return msToDur(ms)
}

// msToDur converts fractional milliseconds to a duration.
func msToDur(ms float64) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms * float64(time.Millisecond))
}
