package baseline

import (
	"math/rand"
	"testing"

	"sliceline/internal/frame"
)

// plantedDataset returns a dataset where feature 0 = 1 AND feature 1 = 2
// marks a clearly problematic slice.
func plantedDataset(rng *rand.Rand, n int) (*frame.Dataset, []float64) {
	ds := &frame.Dataset{
		Name: "planted",
		X0:   frame.NewIntMatrix(n, 3),
		Features: []frame.Feature{
			{Name: "f0", Domain: 3},
			{Name: "f1", Domain: 3},
			{Name: "f2", Domain: 2},
		},
	}
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			ds.X0.Set(i, j, 1+rng.Intn(ds.Features[j].Domain))
		}
		if ds.X0.At(i, 0) == 1 && ds.X0.At(i, 1) == 2 {
			e[i] = 5 + rng.Float64()
		} else {
			e[i] = rng.Float64()
		}
	}
	return ds, e
}

func TestSliceFinderFindsPlantedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, e := plantedDataset(rng, 2000)
	res, err := Run(ds, e, Config{K: 4, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) == 0 {
		t.Fatal("no slices found")
	}
	// The planted conjunction (or an ancestor of it) must appear.
	foundRelated := false
	for _, s := range res.Slices {
		for _, p := range s.Predicates {
			if (p.Feature == 0 && p.Value == 1) || (p.Feature == 1 && p.Value == 2) {
				foundRelated = true
			}
		}
	}
	if !foundRelated {
		t.Fatalf("planted slice not found; got %+v", res.Slices)
	}
}

func TestSliceFinderOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, e := plantedDataset(rng, 2000)
	res, err := Run(ds, e, Config{K: 8, MinSize: 20, EffectSize: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Slices); i++ {
		a, b := res.Slices[i-1], res.Slices[i]
		if len(a.Predicates) > len(b.Predicates) {
			t.Fatal("not ordered by increasing literals")
		}
		if len(a.Predicates) == len(b.Predicates) && a.Size < b.Size {
			t.Fatal("ties not ordered by decreasing size")
		}
	}
}

func TestSliceFinderRespectsMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, e := plantedDataset(rng, 1000)
	res, err := Run(ds, e, Config{K: 10, MinSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Slices {
		if s.Size < 150 {
			t.Fatalf("slice size %d below MinSize", s.Size)
		}
	}
}

func TestSliceFinderValidation(t *testing.T) {
	ds := &frame.Dataset{Name: "d", X0: frame.NewIntMatrix(2, 1), Features: []frame.Feature{{Name: "f", Domain: 1}}}
	ds.X0.Set(0, 0, 1)
	ds.X0.Set(1, 0, 1)
	if _, err := Run(ds, []float64{1}, Config{}); err == nil {
		t.Error("expected error for mismatched error vector")
	}
	empty := &frame.Dataset{Name: "e", X0: frame.NewIntMatrix(0, 1), Features: []frame.Feature{{Name: "f", Domain: 1}}}
	if _, err := Run(empty, nil, Config{}); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestSliceFinderLevelwiseTermination(t *testing.T) {
	// With a tiny K the search must stop at level 1 when enough basic
	// slices qualify — the heuristic termination SliceLine improves on.
	rng := rand.New(rand.NewSource(4))
	ds, e := plantedDataset(rng, 3000)
	res, err := Run(ds, e, Config{K: 1, MinSize: 20, EffectSize: 0.1, PValue: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) == 0 {
		t.Fatal("expected at least one slice")
	}
	if res.Levels != 1 {
		t.Fatalf("explored %d levels, want termination at level 1", res.Levels)
	}
}

func TestSliceFinderStatsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, e := plantedDataset(rng, 1500)
	res, err := Run(ds, e, Config{K: 5, MinSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Slices {
		size, sum := 0, 0.0
		for i := 0; i < ds.NumRows(); i++ {
			ok := true
			for _, p := range s.Predicates {
				if ds.X0.At(i, p.Feature) != p.Value {
					ok = false
					break
				}
			}
			if ok {
				size++
				sum += e[i]
			}
		}
		if size != s.Size {
			t.Fatalf("size %d, scan %d", s.Size, size)
		}
		if avg := sum / float64(size); avg < s.AvgError-1e-9 || avg > s.AvgError+1e-9 {
			t.Fatalf("avg %v, scan %v", s.AvgError, avg)
		}
	}
}
