package baseline

import (
	"math"
	"testing"
)

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	for _, c := range []struct{ a, b, x float64 }{
		{2, 3, 0.3}, {0.5, 0.5, 0.7}, {5, 1, 0.2}, {10, 10, 0.5},
	} {
		lhs := regIncBeta(c.a, c.b, c.x)
		rhs := 1 - regIncBeta(c.b, c.a, 1-c.x)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Errorf("symmetry violated at %+v: %v vs %v", c, lhs, rhs)
		}
	}
}

func TestRegIncBetaUniformCase(t *testing.T) {
	// I_x(1,1) = x (Beta(1,1) is uniform).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// Reference upper-tail values: t=0 → 0.5 for any df; large df approaches
	// the normal distribution: P(T >= 1.96, df=1e6) ≈ 0.025.
	if got := tCDFUpper(0, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(T>=0) = %v, want 0.5", got)
	}
	if got := tCDFUpper(1.96, 1e6); math.Abs(got-0.025) > 1e-4 {
		t.Errorf("P(T>=1.96, df=1e6) = %v, want ≈ 0.025", got)
	}
	// df=1 (Cauchy): P(T >= 1) = 0.25 exactly.
	if got := tCDFUpper(1, 1); math.Abs(got-0.25) > 1e-10 {
		t.Errorf("P(T>=1, df=1) = %v, want 0.25", got)
	}
	// Monotone decreasing in t.
	prev := 1.0
	for _, tv := range []float64{-2, -1, 0, 1, 2, 5} {
		p := tCDFUpper(tv, 7)
		if p > prev {
			t.Errorf("tCDFUpper not monotone at t=%v", tv)
		}
		prev = p
	}
}

func TestWelchEqualSamples(t *testing.T) {
	tt, df := welch(5, 1, 100, 5, 1, 100)
	if tt != 0 {
		t.Errorf("t = %v, want 0 for equal means", tt)
	}
	if df < 100 {
		t.Errorf("df = %v, unexpectedly small", df)
	}
}

func TestWelchZeroVariance(t *testing.T) {
	tt, _ := welch(5, 0, 10, 3, 0, 10)
	if !math.IsInf(tt, 1) {
		t.Errorf("t = %v, want +Inf for zero variance different means", tt)
	}
	tt, _ = welch(5, 0, 10, 5, 0, 10)
	if tt != 0 {
		t.Errorf("t = %v, want 0 for identical degenerate samples", tt)
	}
}

func TestEffectSize(t *testing.T) {
	if got := effectSize(2, 1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("effect size = %v, want 1", got)
	}
	if got := effectSize(1, 0, 1, 0); got != 0 {
		t.Errorf("degenerate equal = %v, want 0", got)
	}
	if got := effectSize(2, 0, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("degenerate different = %v, want +Inf", got)
	}
}
