package baseline

import (
	"math/rand"
	"strings"
	"testing"
)

func TestErrorTreeFindsPlantedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, e := plantedDataset(rng, 3000)
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 3, MinLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	worst := tree.WorstLeaves(1)
	if len(worst) != 1 {
		t.Fatal("no leaves")
	}
	// The worst leaf must capture the planted region f0=1 AND f1=2: its mean
	// error should be near 5.5 and its path should mention both predicates.
	if worst[0].MeanError < 3 {
		t.Fatalf("worst leaf mean error %v, want >> background", worst[0].MeanError)
	}
	path := worst[0].Path
	if !strings.Contains(path, "f0=1") || !strings.Contains(path, "f1=2") {
		t.Fatalf("worst leaf path %q does not isolate the planted region", path)
	}
}

func TestErrorTreeLeavesPartition(t *testing.T) {
	// Leaves are non-overlapping and cover all rows: sizes sum to n.
	rng := rand.New(rand.NewSource(2))
	ds, e := plantedDataset(rng, 1500)
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 4, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range tree.Leaves() {
		total += l.Size
	}
	if total != ds.NumRows() {
		t.Fatalf("leaf sizes sum to %d, want %d (partition property)", total, ds.NumRows())
	}
}

func TestErrorTreeRespectsMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, e := plantedDataset(rng, 1000)
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 6, MinLeaf: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tree.Leaves() {
		if l.Size < 100 {
			t.Fatalf("leaf of size %d below MinLeaf 100", l.Size)
		}
	}
}

func TestErrorTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, e := plantedDataset(rng, 2000)
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 2, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Fatalf("depth %d exceeds cap 2", d)
	}
	for _, l := range tree.Leaves() {
		if len(l.Predicates) > 2 {
			t.Fatalf("leaf with %d equality predicates at depth cap 2", len(l.Predicates))
		}
	}
}

func TestErrorTreeConstantErrors(t *testing.T) {
	// No variance → no split → a single leaf.
	rng := rand.New(rand.NewSource(5))
	ds, _ := plantedDataset(rng, 500)
	e := make([]float64, 500)
	for i := range e {
		e[i] = 1
	}
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 4, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("constant errors produced %d leaves, want 1", tree.NumLeaves())
	}
}

func TestErrorTreeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds, e := plantedDataset(rng, 100)
	if _, err := TrainErrorTree(ds, e[:50], TreeConfig{}); err == nil {
		t.Error("expected error for mismatched vector")
	}
}

func TestErrorTreeLeavesSortedByError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds, e := plantedDataset(rng, 2000)
	tree, err := TrainErrorTree(ds, e, TreeConfig{MaxDepth: 4, MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1].MeanError < leaves[i].MeanError {
			t.Fatal("leaves not sorted by decreasing mean error")
		}
	}
}
