package baseline

import (
	"fmt"
	"sort"

	"sliceline/internal/frame"
)

// The decision-tree slicer is the second approach of the SliceFinder paper:
// train a regression tree ON THE ERROR VECTOR so that leaves partition the
// data into non-overlapping regions of homogeneous model error; the worst
// leaves are the problematic "slices". Unlike SliceLine's lattice, the
// slices cannot overlap and greedy splitting offers no optimality guarantee
// — the trade-off the paper's introduction discusses.

// TreeConfig controls error-tree induction.
type TreeConfig struct {
	MaxDepth int // <= 0 defaults to 4
	MinLeaf  int // minimum rows per leaf; <= 0 defaults to max(32, n/100)
}

// Tree is a binary regression tree over equality splits F_j = v.
type Tree struct {
	root   *node
	ds     *frame.Dataset
	leaves []Leaf
}

// Leaf is one region of the partition with its error statistics.
type Leaf struct {
	Predicates []Predicate // equality path constraints (F_j = v or implicit ¬)
	Path       string      // human-readable path including negations
	Size       int
	MeanError  float64
}

type node struct {
	feature  int
	value    int
	left     *node // rows with F_feature == value
	right    *node // the rest
	leafID   int   // index into leaves for terminal nodes, else -1
	mean     float64
	count    int
	depth    int
	pathDesc string
	eqPath   []Predicate
}

// TrainErrorTree fits a greedy variance-reducing regression tree to the
// error vector. Splits test a single feature-value equality, so each left
// branch deepens a conjunction of equality predicates — the slice vocabulary
// shared with SliceLine.
func TrainErrorTree(ds *frame.Dataset, e []float64, cfg TreeConfig) (*Tree, error) {
	n := ds.NumRows()
	if len(e) != n {
		return nil, fmt.Errorf("baseline: error vector length %d vs %d rows", len(e), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = (n + 99) / 100
		if cfg.MinLeaf < 32 {
			cfg.MinLeaf = 32
		}
	}
	t := &Tree{ds: ds}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	t.root = t.grow(rows, e, 0, cfg, "", nil)
	sort.Slice(t.leaves, func(i, j int) bool { return t.leaves[i].MeanError > t.leaves[j].MeanError })
	return t, nil
}

func (t *Tree) grow(rows []int, e []float64, depth int, cfg TreeConfig, pathDesc string, eqPath []Predicate) *node {
	sum, sq := 0.0, 0.0
	for _, i := range rows {
		sum += e[i]
		sq += e[i] * e[i]
	}
	cnt := len(rows)
	mean := sum / float64(cnt)
	nd := &node{leafID: -1, mean: mean, count: cnt, depth: depth, pathDesc: pathDesc, eqPath: eqPath}

	makeLeaf := func() *node {
		nd.leafID = len(t.leaves)
		t.leaves = append(t.leaves, Leaf{
			Predicates: append([]Predicate(nil), eqPath...),
			Path:       pathDesc,
			Size:       cnt,
			MeanError:  mean,
		})
		return nd
	}
	if depth >= cfg.MaxDepth || cnt < 2*cfg.MinLeaf {
		return makeLeaf()
	}

	// Greedy best equality split by weighted variance (equivalently, SSE)
	// reduction.
	parentSSE := sq - sum*mean
	bestGain := 0.0
	bestFeat, bestVal := -1, 0
	for f := 0; f < t.ds.NumFeatures(); f++ {
		// Per-value sums within this node.
		dom := t.ds.Features[f].Domain
		vSum := make([]float64, dom+1)
		vSq := make([]float64, dom+1)
		vCnt := make([]int, dom+1)
		for _, i := range rows {
			v := t.ds.X0.At(i, f)
			vSum[v] += e[i]
			vSq[v] += e[i] * e[i]
			vCnt[v]++
		}
		for v := 1; v <= dom; v++ {
			nl := vCnt[v]
			nr := cnt - nl
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			lm := vSum[v] / float64(nl)
			rm := (sum - vSum[v]) / float64(nr)
			lSSE := vSq[v] - vSum[v]*lm
			rSSE := (sq - vSq[v]) - (sum-vSum[v])*rm
			gain := parentSSE - lSSE - rSSE
			if gain > bestGain {
				bestGain = gain
				bestFeat, bestVal = f, v
			}
		}
	}
	if bestFeat < 0 || bestGain <= 1e-12 {
		return makeLeaf()
	}

	var lRows, rRows []int
	for _, i := range rows {
		if t.ds.X0.At(i, bestFeat) == bestVal {
			lRows = append(lRows, i)
		} else {
			rRows = append(rRows, i)
		}
	}
	name := t.ds.Features[bestFeat].Name
	nd.feature = bestFeat
	nd.value = bestVal
	lDesc := joinPath(pathDesc, fmt.Sprintf("%s=%d", name, bestVal))
	rDesc := joinPath(pathDesc, fmt.Sprintf("%s!=%d", name, bestVal))
	lPath := append(append([]Predicate(nil), eqPath...), Predicate{Feature: bestFeat, Name: name, Value: bestVal})
	nd.left = t.grow(lRows, e, depth+1, cfg, lDesc, lPath)
	nd.right = t.grow(rRows, e, depth+1, cfg, rDesc, eqPath)
	return nd
}

func joinPath(base, pred string) string {
	if base == "" {
		return pred
	}
	return base + " AND " + pred
}

// Leaves returns all leaves ordered by decreasing mean error — the
// non-overlapping problematic regions.
func (t *Tree) Leaves() []Leaf { return t.leaves }

// WorstLeaves returns the k leaves with the highest mean error.
func (t *Tree) WorstLeaves(k int) []Leaf {
	if k > len(t.leaves) {
		k = len(t.leaves)
	}
	return t.leaves[:k]
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int {
	var d func(n *node) int
	d = func(n *node) int {
		if n == nil || n.leafID >= 0 {
			if n == nil {
				return 0
			}
			return n.depth
		}
		l, r := d(n.left), d(n.right)
		if l > r {
			return l
		}
		return r
	}
	return d(t.root)
}

// NumLeaves returns the number of leaves (the partition size).
func (t *Tree) NumLeaves() int { return len(t.leaves) }
