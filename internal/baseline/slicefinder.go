package baseline

import (
	"fmt"
	"sort"

	"sliceline/internal/frame"
	"sliceline/internal/stats"
)

// Config holds the SliceFinder parameters.
type Config struct {
	// K is the number of slices to find; the search terminates level-wise
	// once K slices are collected (the heuristic termination SliceLine
	// criticizes for not guaranteeing the true top-K). <= 0 defaults to 4.
	K int
	// EffectSize is the minimum effect size threshold T. <= 0 defaults to
	// 0.4.
	EffectSize float64
	// PValue is the significance level for Welch's t-test. <= 0 defaults to
	// 0.05.
	PValue float64
	// MinSize is the minimum slice size. <= 0 defaults to max(32, n/100),
	// aligned with SliceLine's support constraint for comparability.
	MinSize int
	// MaxLevel caps the number of literals per slice. <= 0 means the number
	// of features.
	MaxLevel int
}

// Slice is one result of the lattice search, ordered per the SliceFinder
// paper by increasing number of literals, decreasing slice size, and
// decreasing effect size.
type Slice struct {
	Predicates []Predicate
	Size       int
	AvgError   float64
	EffectSize float64
	PValue     float64
}

// Predicate is one literal F_j = v.
type Predicate struct {
	Feature int
	Name    string
	Value   int
}

func (p Predicate) String() string { return fmt.Sprintf("%s=%d", p.Name, p.Value) }

// Result is the output of a SliceFinder search.
type Result struct {
	Slices    []Slice
	Levels    int // lattice levels actually explored
	Evaluated int // slices evaluated (for work comparison with SliceLine)
}

type sfSlice struct {
	preds []Predicate
	rows  []int // matching row ids (tid-list)
}

// Run performs the level-wise lattice search: at each level it evaluates all
// extensions of the surviving slices, keeps those that are significant with
// large effect size (recommendations), and terminates as soon as at least K
// recommendations have been collected. Unlike SliceLine it offers no
// optimality guarantee — slices deeper in the lattice can dominate everything
// found so far and still be missed.
func Run(ds *frame.Dataset, e []float64, cfg Config) (*Result, error) {
	n := ds.NumRows()
	if len(e) != n {
		return nil, fmt.Errorf("baseline: error vector length %d vs %d rows", len(e), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty dataset")
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.EffectSize <= 0 {
		cfg.EffectSize = 0.4
	}
	if cfg.PValue <= 0 {
		cfg.PValue = 0.05
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = (n + 99) / 100
		if cfg.MinSize < 32 {
			cfg.MinSize = 32
		}
	}
	m := ds.NumFeatures()
	maxL := m
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxL {
		maxL = cfg.MaxLevel
	}

	totalSum, totalSq := 0.0, 0.0
	for _, v := range e {
		totalSum += v
		totalSq += v * v
	}

	res := &Result{}
	var found []Slice

	// Level 1 candidates: all basic slices, materialized with tid-lists so
	// extensions intersect incrementally (the hand-crafted single-worker
	// lattice search the SliceFinder paper describes).
	var frontier []sfSlice
	for f := 0; f < m; f++ {
		byVal := make([][]int, ds.Features[f].Domain+1)
		for i := 0; i < n; i++ {
			v := ds.X0.At(i, f)
			byVal[v] = append(byVal[v], i)
		}
		for v := 1; v <= ds.Features[f].Domain; v++ {
			if len(byVal[v]) == 0 {
				continue
			}
			frontier = append(frontier, sfSlice{
				preds: []Predicate{{Feature: f, Name: ds.Features[f].Name, Value: v}},
				rows:  byVal[v],
			})
		}
	}

	for level := 1; level <= maxL && len(frontier) > 0; level++ {
		res.Levels = level
		var next []sfSlice
		for _, s := range frontier {
			res.Evaluated++
			if len(s.rows) < cfg.MinSize {
				continue
			}
			sum, sq := 0.0, 0.0
			for _, i := range s.rows {
				sum += e[i]
				sq += e[i] * e[i]
			}
			n1 := len(s.rows)
			n2 := n - n1
			if n2 < 2 || n1 < 2 {
				continue
			}
			m1 := sum / float64(n1)
			v1 := (sq - sum*m1) / float64(n1-1)
			m2 := (totalSum - sum) / float64(n2)
			v2 := (totalSq - sq - (totalSum-sum)*m2) / float64(n2-1)
			if v1 < 0 {
				v1 = 0
			}
			if v2 < 0 {
				v2 = 0
			}
			eff := stats.EffectSize(m1, v1, m2, v2)
			t, df := stats.Welch(m1, v1, float64(n1), m2, v2, float64(n2))
			p := stats.TCDFUpper(t, df)
			if eff >= cfg.EffectSize && p <= cfg.PValue {
				found = append(found, Slice{
					Predicates: s.preds,
					Size:       n1,
					AvgError:   m1,
					EffectSize: eff,
					PValue:     p,
				})
				continue // recommended slices are not expanded further
			}
			next = append(next, s)
		}
		// Level-wise termination: stop expanding once K slices are found.
		if len(found) >= cfg.K {
			break
		}
		frontier = expand(ds, next, level)
	}

	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if len(a.Predicates) != len(b.Predicates) {
			return len(a.Predicates) < len(b.Predicates)
		}
		if a.Size != b.Size {
			return a.Size > b.Size
		}
		return a.EffectSize > b.EffectSize
	})
	if len(found) > cfg.K {
		found = found[:cfg.K]
	}
	res.Slices = found
	return res, nil
}

// expand generates the next level by extending each surviving slice with
// predicates on features strictly after its last literal (each conjunction
// enumerated once).
func expand(ds *frame.Dataset, cur []sfSlice, level int) []sfSlice {
	var out []sfSlice
	for _, s := range cur {
		lastFeat := s.preds[len(s.preds)-1].Feature
		for f := lastFeat + 1; f < ds.NumFeatures(); f++ {
			byVal := make(map[int][]int)
			for _, i := range s.rows {
				v := ds.X0.At(i, f)
				byVal[v] = append(byVal[v], i)
			}
			for v, rows := range byVal {
				preds := make([]Predicate, len(s.preds), len(s.preds)+1)
				copy(preds, s.preds)
				preds = append(preds, Predicate{Feature: f, Name: ds.Features[f].Name, Value: v})
				out = append(out, sfSlice{preds: preds, rows: rows})
			}
		}
	}
	return out
}
