// Package baseline implements the SliceFinder-style lattice search of Chung
// et al. (ICDE'19 / TKDE'20), the closest prior work the paper positions
// itself against: a heuristic level-wise search for slices with large effect
// size whose error distribution differs significantly (Welch's t-test) from
// the rest of the data, terminating level-wise once K slices are found. It
// exists as the comparison point for the "ML systems comparison" experiment
// and to contrast heuristic termination with SliceLine's exact enumeration.
package baseline

import "math"

// welch computes Welch's t statistic and degrees of freedom for two samples
// summarized by (mean, variance, count).
func welch(m1, v1 float64, n1 int, m2, v2 float64, n2 int) (t, df float64) {
	a := v1 / float64(n1)
	b := v2 / float64(n2)
	se := math.Sqrt(a + b)
	if se == 0 {
		if m1 == m2 {
			return 0, 1
		}
		return math.Inf(1), 1
	}
	t = (m1 - m2) / se
	den := a*a/float64(n1-1) + b*b/float64(n2-1)
	if den == 0 {
		df = float64(n1 + n2 - 2)
	} else {
		df = (a + b) * (a + b) / den
	}
	if df < 1 {
		df = 1
	}
	return t, df
}

// effectSize computes the standardized difference of the two error
// distributions (Cohen's d with pooled variance), the SliceFinder effect
// size measure.
func effectSize(m1, v1, m2, v2 float64) float64 {
	pooled := math.Sqrt((v1 + v2) / 2)
	if pooled == 0 {
		if m1 == m2 {
			return 0
		}
		return math.Inf(1)
	}
	return (m1 - m2) / pooled
}

// tCDFUpper returns P(T >= t) for Student's t distribution with df degrees
// of freedom, via the regularized incomplete beta function.
func tCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	if math.IsInf(t, -1) {
		return 1
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t < 0 {
		return 1 - p
	}
	return p
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), following the
// standard numerical-recipes formulation.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
