package membership

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := BuildRing([]string{"w1", "w2", "w3"}, 0)
	b := BuildRing([]string{"w3", "w1", "w2"}, 0)
	if a.Len() != 3*DefaultVnodes || a.Len() != b.Len() {
		t.Fatalf("point counts: %d vs %d", a.Len(), b.Len())
	}
	for k := uint64(0); k < 10_000; k += 97 {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %d: owner depends on input order (%s vs %s)", k, oa, ob)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 0)
	if owner, ok := r.Owner(42); ok || owner != "" {
		t.Fatalf("empty ring claimed an owner: %q", owner)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := BuildRing([]string{"solo"}, 8)
	for i := 0; i < 100; i++ {
		owner, ok := r.Owner(PartitionKey(0xdead, 100, i))
		if !ok || owner != "solo" {
			t.Fatalf("key %d: owner %q ok=%v", i, owner, ok)
		}
	}
}

// TestRingStabilityUnderChurn is the property the whole design leans on: when
// one member leaves, only the keys it owned move; every other key keeps its
// owner (so surviving workers keep their warm partitions). When it rejoins,
// placement returns exactly to the original.
func TestRingStabilityUnderChurn(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	full := BuildRing(ids, 0)
	without := BuildRing([]string{"w1", "w2", "w4"}, 0)

	keys := make([]uint64, 0, 256)
	for p := 0; p < 256; p++ {
		keys = append(keys, PartitionKey(0xfeedbeef, 256, p))
	}
	moved := 0
	for _, k := range keys {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before == "w3" {
			if after == "w3" {
				t.Fatalf("departed member still owns key %d", k)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving members moved on a single departure", moved)
	}

	rejoined := BuildRing(ids, 0)
	for _, k := range keys {
		a, _ := full.Owner(k)
		b, _ := rejoined.Owner(k)
		if a != b {
			t.Fatalf("placement did not return after rejoin: key %d %s vs %s", k, a, b)
		}
	}
}

func TestRingRoughBalance(t *testing.T) {
	n := 4
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%d", i)
	}
	r := BuildRing(ids, 0)
	counts := map[string]int{}
	total := 4096
	for p := 0; p < total; p++ {
		owner, _ := r.Owner(PartitionKey(0xabc123, total, p))
		counts[owner]++
	}
	// With 64 vnodes each, no member should stray past ~2.5x the fair share.
	fair := total / n
	for id, c := range counts {
		if c > fair*5/2 || c < fair*2/5 {
			t.Fatalf("imbalanced placement: %s owns %d of %d (fair %d): %v", id, c, total, fair, counts)
		}
	}
}

func TestPartitionKeyStability(t *testing.T) {
	// Pinned values: these keys address worker-side partition caches across
	// jobs and restarts, so the function must never change silently.
	if k := PartitionKey(0, 1, 0); k != PartitionKey(0, 1, 0) {
		t.Fatal("PartitionKey is not a pure function")
	}
	seen := map[uint64]string{}
	for _, sig := range []uint64{0, 1, 0xdeadbeef} {
		for _, n := range []int{1, 4, 8} {
			for p := 0; p < n; p++ {
				k := PartitionKey(sig, n, p)
				at := fmt.Sprintf("%x/%d/%d", sig, n, p)
				if prev, dup := seen[k]; dup {
					t.Fatalf("collision: %s and %s both hash to %d", prev, at, k)
				}
				seen[k] = at
			}
		}
	}
}
