package membership

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := BuildRing([]string{"w1", "w2", "w3"}, 0)
	b := BuildRing([]string{"w3", "w1", "w2"}, 0)
	if a.Len() != 3*DefaultVnodes || a.Len() != b.Len() {
		t.Fatalf("point counts: %d vs %d", a.Len(), b.Len())
	}
	for k := uint64(0); k < 10_000; k += 97 {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("key %d: owner depends on input order (%s vs %s)", k, oa, ob)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := BuildRing(nil, 0)
	if owner, ok := r.Owner(42); ok || owner != "" {
		t.Fatalf("empty ring claimed an owner: %q", owner)
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := BuildRing([]string{"solo"}, 8)
	for i := 0; i < 100; i++ {
		owner, ok := r.Owner(PartitionKey(0xdead, 100, i))
		if !ok || owner != "solo" {
			t.Fatalf("key %d: owner %q ok=%v", i, owner, ok)
		}
	}
}

// TestRingStabilityUnderChurn is the property the whole design leans on: when
// one member leaves, only the keys it owned move; every other key keeps its
// owner (so surviving workers keep their warm partitions). When it rejoins,
// placement returns exactly to the original.
func TestRingStabilityUnderChurn(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	full := BuildRing(ids, 0)
	without := BuildRing([]string{"w1", "w2", "w4"}, 0)

	keys := make([]uint64, 0, 256)
	for p := 0; p < 256; p++ {
		keys = append(keys, PartitionKey(0xfeedbeef, 256, p))
	}
	moved := 0
	for _, k := range keys {
		before, _ := full.Owner(k)
		after, _ := without.Owner(k)
		if before == "w3" {
			if after == "w3" {
				t.Fatalf("departed member still owns key %d", k)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving members moved on a single departure", moved)
	}

	rejoined := BuildRing(ids, 0)
	for _, k := range keys {
		a, _ := full.Owner(k)
		b, _ := rejoined.Owner(k)
		if a != b {
			t.Fatalf("placement did not return after rejoin: key %d %s vs %s", k, a, b)
		}
	}
}

func TestRingRoughBalance(t *testing.T) {
	n := 4
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%d", i)
	}
	r := BuildRing(ids, 0)
	counts := map[string]int{}
	total := 4096
	for p := 0; p < total; p++ {
		owner, _ := r.Owner(PartitionKey(0xabc123, total, p))
		counts[owner]++
	}
	// With 64 vnodes each, no member should stray past ~2.5x the fair share.
	fair := total / n
	for id, c := range counts {
		if c > fair*5/2 || c < fair*2/5 {
			t.Fatalf("imbalanced placement: %s owns %d of %d (fair %d): %v", id, c, total, fair, counts)
		}
	}
}

// TestRingBalanceBound is the documented placement-balance guarantee: with
// DefaultVnodes (64) points per member and ~64 partitions per worker, no
// worker's load strays outside [0.5, 1.75]× the fair share, and the
// normalized load variance (CV²) stays under 0.10, across fleet sizes
// spanning the simulator's 8–150 worker scenarios. The ring hash is
// deterministic, so these are exact assertions on the distribution the
// design promises, not a flaky sample.
func TestRingBalanceBound(t *testing.T) {
	for _, w := range []int{8, 25, 64, 150} {
		ids := make([]string, w)
		for i := range ids {
			ids[i] = fmt.Sprintf("worker-%04d", i)
		}
		r := BuildRing(ids, 0)
		n := 64 * w
		counts := make(map[string]int, w)
		for _, sig := range []uint64{0x511ce11e, 0xabc123, 1} {
			for p := 0; p < n; p++ {
				owner, ok := r.Owner(PartitionKey(sig, n, p))
				if !ok {
					t.Fatalf("w=%d: no owner for partition %d", w, p)
				}
				counts[owner]++
			}
		}
		fair := float64(3*n) / float64(w)
		var sumsq float64
		for _, id := range ids {
			c := float64(counts[id])
			if c > 1.75*fair || c < 0.5*fair {
				t.Errorf("w=%d: %s owns %.0f of fair share %.1f (ratio %.2f), outside [0.5, 1.75]",
					w, id, c, fair, c/fair)
			}
			d := c - fair
			sumsq += d * d
		}
		if cv2 := (sumsq / float64(w)) / (fair * fair); cv2 > 0.10 {
			t.Errorf("w=%d: normalized load variance %.4f exceeds 0.10", w, cv2)
		}
	}
}

// TestRingChurnGolden pins the exact movement counts for a single join and a
// single leave on a 10-worker fleet with 256 partitions. The property tests
// above say "few keys move"; this golden makes any silent change to the hash,
// the vnode scheme, or the tie-break — all of which would reshuffle every
// warm partition cache in a live fleet — fail loudly with the new numbers.
func TestRingChurnGolden(t *testing.T) {
	ids := make([]string, 10)
	for i := range ids {
		ids[i] = fmt.Sprintf("worker-%04d", i)
	}
	base := BuildRing(ids, 0)
	joined := BuildRing(append(append([]string{}, ids...), "worker-0010"), 0)
	left := BuildRing(ids[1:], 0) // worker-0000 departs

	const n, sig = 256, 0x511ce11e
	joinMoved, toJoiner, leaveMoved, ownedByW0 := 0, 0, 0, 0
	for p := 0; p < n; p++ {
		k := PartitionKey(sig, n, p)
		b, _ := base.Owner(k)
		if b == "worker-0000" {
			ownedByW0++
		}
		if j, _ := joined.Owner(k); j != b {
			joinMoved++
			if j == "worker-0010" {
				toJoiner++
			}
		}
		if l, _ := left.Owner(k); l != b {
			leaveMoved++
		}
	}
	// Every moved key on a join lands on the joiner; every moved key on a
	// leave is one the departed member owned. The counts are pinned.
	if joinMoved != 31 || toJoiner != 31 {
		t.Errorf("join moved %d keys (%d to the joiner), golden is 31/31", joinMoved, toJoiner)
	}
	if leaveMoved != 34 || ownedByW0 != 34 {
		t.Errorf("leave moved %d keys, departed member owned %d, golden is 34/34", leaveMoved, ownedByW0)
	}
}

func TestPartitionKeyStability(t *testing.T) {
	// Pinned values: these keys address worker-side partition caches across
	// jobs and restarts, so the function must never change silently.
	if k := PartitionKey(0, 1, 0); k != PartitionKey(0, 1, 0) {
		t.Fatal("PartitionKey is not a pure function")
	}
	seen := map[uint64]string{}
	for _, sig := range []uint64{0, 1, 0xdeadbeef} {
		for _, n := range []int{1, 4, 8} {
			for p := 0; p < n; p++ {
				k := PartitionKey(sig, n, p)
				at := fmt.Sprintf("%x/%d/%d", sig, n, p)
				if prev, dup := seen[k]; dup {
					t.Fatalf("collision: %s and %s both hash to %d", prev, at, k)
				}
				seen[k] = at
			}
		}
	}
}
