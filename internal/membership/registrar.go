package membership

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sliceline/internal/obs"
)

// Default Registrar configuration.
const (
	DefaultLeaseInterval = 2 * time.Second
	DefaultLeaseStrikes  = 3
)

// ErrStaleIncarnation rejects an announce from an older incarnation of a
// member the registrar already knows under a newer one — the ghost of a
// replaced process must not overwrite its successor's address.
var ErrStaleIncarnation = errors.New("membership: announce from a stale incarnation")

// RegistrarConfig configures the driver-side membership table.
type RegistrarConfig struct {
	// LeaseInterval is the renewal cadence workers are told to announce at,
	// and the period of the expiry scan. <= 0 selects 2s.
	LeaseInterval time.Duration
	// Strikes is how many consecutive expiry scans a member may miss before
	// it is expired — the same strike discipline the dist heartbeat prober
	// applies, inverted: instead of the driver probing workers, workers
	// prove themselves to the driver. <= 0 selects 3.
	Strikes int
	// Metrics, when non-nil, receives the sl_membership_* metric families.
	// Nil disables metric recording at zero cost.
	Metrics *obs.Registry
}

func (c RegistrarConfig) withDefaults() RegistrarConfig {
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = DefaultLeaseInterval
	}
	if c.Strikes <= 0 {
		c.Strikes = DefaultLeaseStrikes
	}
	return c
}

// View is one immutable snapshot of the live membership. Version increases
// on every change (join, address/incarnation change, expiry), so consumers
// can cheaply detect "anything moved since I last looked".
type View struct {
	Version uint64
	Members []Member // sorted by ID
}

// AnnounceReply tells the worker how to behave as a lease holder.
type AnnounceReply struct {
	// LeaseMS is the renewal interval in milliseconds; the worker should
	// re-announce about this often (the Announcer renews at half of it).
	LeaseMS int64 `json:"lease_ms"`
	// Strikes echoes the registrar's expiry threshold, for operators.
	Strikes int `json:"strikes"`
	// Version is the membership view version after this announce.
	Version uint64 `json:"version"`
}

// memberState is the registrar's per-member bookkeeping.
type memberState struct {
	Member
	renewed  bool // announced since the last expiry scan
	strikes  int  // consecutive scans without a renewal
	joined   time.Time
	lastSeen time.Time
}

// MemberStatus is the operator-facing view of one member (GET /v1/cluster).
type MemberStatus struct {
	ID          string `json:"id"`
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
	Strikes     int    `json:"strikes"`
	AgeMS       int64  `json:"age_ms"`       // since join
	LastSeenMS  int64  `json:"last_seen_ms"` // since last renewal
}

// Registrar is the driver-side membership table: workers Announce to join
// and renew, a periodic expiry scan strikes out the silent ones, and every
// view change fans out to Watch subscribers. All methods are safe for
// concurrent use.
type Registrar struct {
	cfg RegistrarConfig
	ob  memObs

	mu       sync.Mutex
	members  map[string]*memberState
	version  uint64
	watchers map[int]chan View
	nextW    int

	stop chan struct{}
	done chan struct{}
}

// NewRegistrar builds an idle registrar; call Start to run the background
// expiry scanner, or drive scans manually with Tick in tests.
func NewRegistrar(cfg RegistrarConfig) *Registrar {
	cfg = cfg.withDefaults()
	return &Registrar{
		cfg:      cfg,
		ob:       newMemObs(cfg.Metrics),
		members:  make(map[string]*memberState),
		watchers: make(map[int]chan View),
	}
}

// LeaseInterval reports the configured renewal cadence.
func (r *Registrar) LeaseInterval() time.Duration { return r.cfg.LeaseInterval }

// Announce joins or renews a member. A new ID, a changed address, or a
// higher incarnation bumps the view version and notifies watchers; a plain
// renewal only clears the member's strikes. Announces from an incarnation
// older than the registered one are rejected with ErrStaleIncarnation.
func (r *Registrar) Announce(a Announce) (AnnounceReply, error) {
	if err := a.Member.validate(); err != nil {
		return AnnounceReply{}, fmt.Errorf("%w: %v", ErrBadAnnounce, err)
	}
	now := time.Now()
	r.mu.Lock()
	r.ob.announces.Inc()
	m, ok := r.members[a.ID]
	changed := false
	switch {
	case !ok:
		m = &memberState{Member: a.Member, joined: now}
		r.members[a.ID] = m
		changed = true
		r.ob.joins.Inc()
	case a.Incarnation < m.Incarnation:
		r.mu.Unlock()
		r.ob.stale.Inc()
		return AnnounceReply{}, fmt.Errorf("%w: %s announced incarnation %d, registered %d",
			ErrStaleIncarnation, a.ID, a.Incarnation, m.Incarnation)
	case a.Incarnation > m.Incarnation || a.Addr != m.Addr:
		// A restarted (or re-homed) process: same identity, new lifetime.
		m.Member = a.Member
		changed = true
		r.ob.rejoins.Inc()
	}
	m.renewed = true
	m.strikes = 0
	m.lastSeen = now
	if changed {
		r.bumpLocked()
	}
	reply := AnnounceReply{
		LeaseMS: r.cfg.LeaseInterval.Milliseconds(),
		Strikes: r.cfg.Strikes,
		Version: r.version,
	}
	r.ob.setMembers(len(r.members), r.version)
	r.mu.Unlock()
	return reply, nil
}

// LeaseStep is the lease expiry discipline as a pure transition: one scan
// observes whether the member renewed since the previous scan and either
// clears its strikes or strikes it, expiring it at the limit. It is the dist
// heartbeat's ProbeStep inverted (workers prove themselves to the driver)
// and is shared with the cluster simulator's membership model.
func LeaseStep(renewed bool, strikes, limit int) (newStrikes int, expired bool) {
	if renewed {
		return 0, false
	}
	strikes++
	return strikes, strikes >= limit
}

// Tick runs one expiry scan: members that announced since the previous scan
// are cleared; the silent ones take a strike, and a member reaching the
// strike limit is expired from the view. Start runs this on a ticker;
// tests call it directly for deterministic lease timelines.
func (r *Registrar) Tick() {
	r.mu.Lock()
	changed := false
	for id, m := range r.members {
		strikes, expired := LeaseStep(m.renewed, m.strikes, r.cfg.Strikes)
		m.renewed = false
		m.strikes = strikes
		if expired {
			delete(r.members, id)
			changed = true
			r.ob.expirations.Inc()
		}
	}
	if changed {
		r.bumpLocked()
	}
	r.ob.setMembers(len(r.members), r.version)
	r.mu.Unlock()
}

// bumpLocked advances the view version and fans the new view out to every
// watcher. Callers hold r.mu.
func (r *Registrar) bumpLocked() {
	r.version++
	v := r.snapshotLocked()
	for _, ch := range r.watchers {
		// Coalesce rather than block: a slow watcher loses intermediate
		// views, never the latest one.
		for {
			select {
			case ch <- v:
			default:
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

func (r *Registrar) snapshotLocked() View {
	v := View{Version: r.version, Members: make([]Member, 0, len(r.members))}
	for _, m := range r.members {
		v.Members = append(v.Members, m.Member)
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	return v
}

// Snapshot returns the current live view.
func (r *Registrar) Snapshot() View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// Status returns the operator-facing member table, sorted by ID.
func (r *Registrar) Status() []MemberStatus {
	now := time.Now()
	r.mu.Lock()
	out := make([]MemberStatus, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, MemberStatus{
			ID:          m.ID,
			Addr:        m.Addr,
			Incarnation: m.Incarnation,
			Strikes:     m.strikes,
			AgeMS:       now.Sub(m.joined).Milliseconds(),
			LastSeenMS:  now.Sub(m.lastSeen).Milliseconds(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Version returns the current view version without copying the member list.
func (r *Registrar) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// Watch subscribes to view changes. The returned channel receives every
// version bump (coalesced under backpressure — the latest view always
// arrives); cancel unsubscribes and the channel is then never sent to again.
func (r *Registrar) Watch() (<-chan View, func()) {
	ch := make(chan View, 4)
	r.mu.Lock()
	id := r.nextW
	r.nextW++
	r.watchers[id] = ch
	r.mu.Unlock()
	cancel := func() {
		r.mu.Lock()
		delete(r.watchers, id)
		r.mu.Unlock()
	}
	return ch, cancel
}

// Start launches the background expiry scanner at the lease interval. It is
// idempotent; Close stops it.
func (r *Registrar) Start() {
	r.mu.Lock()
	if r.stop != nil {
		r.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	r.stop, r.done = stop, done
	r.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(r.cfg.LeaseInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.Tick()
			}
		}
	}()
}

// Close stops the expiry scanner. Watchers stay subscribed (the registrar
// can be restarted with Start).
func (r *Registrar) Close() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
