package membership

import (
	"errors"
	"testing"
	"time"
)

func mem(id, addr string, inc uint64) Member {
	return Member{ID: id, Addr: addr, Incarnation: inc}
}

func mustAnnounce(t *testing.T, r *Registrar, m Member) AnnounceReply {
	t.Helper()
	reply, err := r.Announce(Announce{Member: m})
	if err != nil {
		t.Fatalf("announce %+v: %v", m, err)
	}
	return reply
}

func TestRegistrarJoinRenewExpire(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{Strikes: 3})

	reply := mustAnnounce(t, r, mem("w1", "h:1", 1))
	if reply.Version != 1 {
		t.Fatalf("first join: version %d, want 1", reply.Version)
	}
	if reply.LeaseMS != DefaultLeaseInterval.Milliseconds() || reply.Strikes != 3 {
		t.Fatalf("lease terms: %+v", reply)
	}
	mustAnnounce(t, r, mem("w2", "h:2", 1))
	if v := r.Snapshot(); len(v.Members) != 2 || v.Version != 2 {
		t.Fatalf("snapshot after two joins: %+v", v)
	}

	// A plain renewal does not bump the version.
	if reply := mustAnnounce(t, r, mem("w1", "h:1", 1)); reply.Version != 2 {
		t.Fatalf("renewal bumped version to %d", reply.Version)
	}

	// w2 goes silent. The first scan consumes its join announce; strikes
	// accumulate on the next three, and the third strike expires it. w1
	// renews before each scan and stays.
	for i := 0; i < 4; i++ {
		mustAnnounce(t, r, mem("w1", "h:1", 1))
		r.Tick()
		if i < 3 {
			if v := r.Snapshot(); len(v.Members) != 2 {
				t.Fatalf("scan %d: w2 expired early: %+v", i, v)
			}
		}
	}
	v := r.Snapshot()
	if len(v.Members) != 1 || v.Members[0].ID != "w1" {
		t.Fatalf("after strike-out: %+v", v)
	}
	if v.Version != 3 {
		t.Fatalf("expiry should bump version once: got %d", v.Version)
	}
}

func TestRegistrarStrikeResetOnRenewal(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{Strikes: 3})
	mustAnnounce(t, r, mem("w1", "h:1", 1))

	// The first scan consumes the join announce; the next two silent scans
	// accumulate two strikes...
	r.Tick()
	r.Tick()
	r.Tick()
	if st := r.Status(); st[0].Strikes != 2 {
		t.Fatalf("want 2 strikes, got %+v", st)
	}
	// ...one renewal wipes them, so the member survives another two silent
	// scans beyond the consuming one.
	mustAnnounce(t, r, mem("w1", "h:1", 1))
	r.Tick() // consumes the renewal
	r.Tick()
	r.Tick()
	if v := r.Snapshot(); len(v.Members) != 1 {
		t.Fatalf("member expired despite renewal: %+v", v)
	}
	r.Tick()
	if v := r.Snapshot(); len(v.Members) != 0 {
		t.Fatalf("member should expire after 3 silent scans: %+v", v)
	}
}

func TestRegistrarIncarnations(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{})
	mustAnnounce(t, r, mem("w1", "h:1", 5))
	v0 := r.Version()

	// Higher incarnation: same identity, new process — version bumps.
	mustAnnounce(t, r, mem("w1", "h:1", 6))
	if r.Version() != v0+1 {
		t.Fatalf("restart did not bump version: %d vs %d", r.Version(), v0)
	}
	// Stale incarnation: rejected, state untouched.
	_, err := r.Announce(Announce{Member: mem("w1", "h:9", 5)})
	if !errors.Is(err, ErrStaleIncarnation) {
		t.Fatalf("want ErrStaleIncarnation, got %v", err)
	}
	v := r.Snapshot()
	if v.Members[0].Addr != "h:1" || v.Members[0].Incarnation != 6 {
		t.Fatalf("stale announce mutated state: %+v", v)
	}

	// Address change at the same incarnation also counts as a rejoin.
	mustAnnounce(t, r, mem("w1", "h:2", 6))
	if got := r.Snapshot().Members[0].Addr; got != "h:2" {
		t.Fatalf("re-home ignored: %s", got)
	}
}

func TestRegistrarRejectsInvalidMember(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{})
	if _, err := r.Announce(Announce{Member: Member{ID: "", Addr: "h:1"}}); !errors.Is(err, ErrBadAnnounce) {
		t.Fatalf("empty ID accepted: %v", err)
	}
}

func TestRegistrarWatchCoalesces(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{})
	ch, cancel := r.Watch()
	defer cancel()

	// More changes than the channel buffers: the latest view must still land.
	for i := 0; i < 10; i++ {
		mustAnnounce(t, r, mem("w", "h:1", uint64(i+1)))
	}
	var last View
	drained := false
	for !drained {
		select {
		case v := <-ch:
			if v.Version < last.Version {
				t.Fatalf("view went backwards: %d after %d", v.Version, last.Version)
			}
			last = v
		default:
			drained = true
		}
	}
	if last.Version != r.Version() {
		t.Fatalf("latest view not delivered: watcher saw %d, registrar at %d", last.Version, r.Version())
	}

	cancel()
	mustAnnounce(t, r, mem("w2", "h:2", 1))
	select {
	case v := <-ch:
		if v.Version == r.Version() {
			t.Fatal("cancelled watcher still receiving")
		}
	default:
	}
}

func TestRegistrarStartExpiresInBackground(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{LeaseInterval: 10 * time.Millisecond, Strikes: 2})
	mustAnnounce(t, r, mem("w1", "h:1", 1))
	ch, cancel := r.Watch()
	defer cancel()
	r.Start()
	r.Start() // idempotent
	defer r.Close()

	deadline := time.After(2 * time.Second)
	for {
		select {
		case v := <-ch:
			if len(v.Members) == 0 {
				return // expired by the background scanner
			}
		case <-deadline:
			t.Fatalf("silent member never expired: %+v", r.Snapshot())
		}
	}
}
