package membership

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTransport records announces and serves scripted replies: calls in the
// [failLo, failHi] window (1-based) fail, everything else succeeds.
type fakeTransport struct {
	mu             sync.Mutex
	calls          int
	failLo, failHi int
	leaseMS        int64
	gotInc         []uint64
}

func (f *fakeTransport) send(_ context.Context, a Announce) (AnnounceReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	f.gotInc = append(f.gotInc, a.Incarnation)
	if f.calls >= f.failLo && f.calls <= f.failHi {
		return AnnounceReply{}, errors.New("driver down")
	}
	return AnnounceReply{LeaseMS: f.leaseMS, Strikes: 3, Version: uint64(f.calls)}, nil
}

func (f *fakeTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestAnnouncerRenewsAtHalfLease(t *testing.T) {
	ft := &fakeTransport{leaseMS: 20} // renew every 10ms
	a := NewAnnouncer(AnnouncerConfig{
		Self:      mem("w1", "h:1", 1),
		Transport: ft.send,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { a.Run(ctx); close(done) }()

	deadline := time.After(2 * time.Second)
	for a.Announces() < 3 {
		select {
		case <-deadline:
			t.Fatalf("only %d announces delivered", a.Announces())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for _, inc := range ft.gotInc {
		if inc != 1 {
			t.Fatalf("announcer changed the incarnation: %v", ft.gotInc)
		}
	}
}

func TestAnnouncerRetriesThroughFailures(t *testing.T) {
	// Call 1 succeeds, calls 2-4 fail (a driver outage), call 5+ succeed.
	ft := &fakeTransport{failLo: 2, failHi: 4, leaseMS: 20}
	var transitions []bool
	var tmu sync.Mutex
	a := NewAnnouncer(AnnouncerConfig{
		Self:        mem("w1", "h:1", 1),
		Transport:   ft.send,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		OnStateChange: func(ok bool) {
			tmu.Lock()
			transitions = append(transitions, ok)
			tmu.Unlock()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { a.Run(ctx); close(done) }()

	deadline := time.After(2 * time.Second)
	for a.Announces() < 2 { // one before the outage, one after
		select {
		case <-deadline:
			t.Fatalf("never recovered: %d calls, %d successes", ft.count(), a.Announces())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done

	if ft.count() < 5 {
		t.Fatalf("expected retries through the outage, saw %d calls", ft.count())
	}
	tmu.Lock()
	defer tmu.Unlock()
	// connect, disconnect at the outage, reconnect after it.
	if len(transitions) < 3 || transitions[0] != true || transitions[1] != false || transitions[len(transitions)-1] != true {
		t.Fatalf("state transitions: %v", transitions)
	}
}

func TestAnnouncerStopsOnCancel(t *testing.T) {
	ft := &fakeTransport{failLo: 1, failHi: 1 << 30} // never succeeds
	a := NewAnnouncer(AnnouncerConfig{
		Self:        mem("w1", "h:1", 1),
		Transport:   ft.send,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { a.Run(ctx); close(done) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestAnnouncerAgainstRegistrar wires the worker loop straight into a
// registrar: the member must appear in the view, then disappear after the
// announcer stops and the lease strikes out.
func TestAnnouncerAgainstRegistrar(t *testing.T) {
	r := NewRegistrar(RegistrarConfig{LeaseInterval: 10 * time.Millisecond, Strikes: 2})
	a := NewAnnouncer(AnnouncerConfig{
		Self: mem("w1", "h:1", 1),
		Transport: func(_ context.Context, an Announce) (AnnounceReply, error) {
			return r.Announce(an)
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { a.Run(ctx); close(done) }()

	deadline := time.After(2 * time.Second)
	for len(r.Snapshot().Members) == 0 {
		select {
		case <-deadline:
			t.Fatal("announcer never registered")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	for i := 0; i < 3; i++ {
		r.Tick()
	}
	if v := r.Snapshot(); len(v.Members) != 0 {
		t.Fatalf("stopped announcer still a member: %+v", v)
	}
}
