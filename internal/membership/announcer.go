package membership

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Transport delivers one announce to the driver and returns its reply. The
// HTTP implementation is HTTPTransport; tests inject function values that
// call a Registrar directly.
type Transport func(ctx context.Context, a Announce) (AnnounceReply, error)

// AnnouncerConfig configures a worker-side lease loop.
type AnnouncerConfig struct {
	// Self is the member this announcer advertises.
	Self Member
	// Transport delivers announces; required.
	Transport Transport
	// Interval is the renewal cadence before the first successful announce
	// (after which the driver's lease interval governs: renew at half the
	// granted lease, so one lost message never costs a strike). <= 0
	// selects 1s.
	Interval time.Duration
	// BaseBackoff is the first retry delay after a failed announce; it
	// doubles per consecutive failure with full jitter on the upper half, so
	// a fleet that lost the same driver does not re-announce in lockstep.
	// <= 0 selects 200ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the growing backoff. <= 0 selects 5s.
	MaxBackoff time.Duration
	// OnStateChange, when non-nil, is called with true when an announce
	// succeeds after a failure (or at first contact) and false when one
	// fails after a success — a hook for logging reconnects.
	OnStateChange func(connected bool)
}

func (c AnnouncerConfig) withDefaults() AnnouncerConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// Announcer keeps one worker's lease alive: announce, sleep half a lease,
// renew, forever. Failures back off exponentially with jitter and keep
// retrying — a worker that outlives a driver restart re-registers by itself
// the moment the driver is back, and a worker expired during a network flap
// rejoins with its next successful renewal. Run blocks until the context is
// cancelled.
type Announcer struct {
	cfg AnnouncerConfig

	mu        sync.Mutex
	announces int
	failures  int
	connected bool
}

// NewAnnouncer builds an announcer; call Run to start the lease loop.
func NewAnnouncer(cfg AnnouncerConfig) *Announcer {
	return &Announcer{cfg: cfg.withDefaults()}
}

// Announces reports how many successful announces the loop has delivered.
func (a *Announcer) Announces() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.announces
}

// Run drives the lease loop until ctx is cancelled. It never returns an
// error: every failure is retried with backoff, because the only correct
// response of a fleet worker to a missing driver is to keep knocking.
func (a *Announcer) Run(ctx context.Context) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := a.cfg.BaseBackoff
	wait := time.Duration(0) // announce immediately on start
	for {
		if wait > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
		}
		actx, cancel := context.WithTimeout(ctx, a.cfg.MaxBackoff)
		reply, err := a.cfg.Transport(actx, Announce{Member: a.cfg.Self})
		cancel()
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			a.setConnected(false)
			a.mu.Lock()
			a.failures++
			a.mu.Unlock()
			// Full jitter on the upper half, like the dist redial.
			wait = backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)+1))
			if backoff *= 2; backoff > a.cfg.MaxBackoff {
				backoff = a.cfg.MaxBackoff
			}
			continue
		}
		a.setConnected(true)
		a.mu.Lock()
		a.announces++
		a.mu.Unlock()
		backoff = a.cfg.BaseBackoff
		// Renew at half the granted lease so one lost announce costs at
		// most a strike, never the membership.
		wait = a.cfg.Interval
		if lease := time.Duration(reply.LeaseMS) * time.Millisecond; lease > 0 {
			wait = lease / 2
		}
	}
}

func (a *Announcer) setConnected(ok bool) {
	a.mu.Lock()
	changed := a.connected != ok
	a.connected = ok
	a.mu.Unlock()
	if changed && a.cfg.OnStateChange != nil {
		a.cfg.OnStateChange(ok)
	}
}
