package membership

import (
	"bytes"
	"testing"
)

// FuzzDecodeAnnounce drives the strict wire decoder with arbitrary bytes: it
// must never panic, and every message it accepts must re-encode to the exact
// canonical bytes and decode back to the same value (the format has a single
// valid encoding per message).
func FuzzDecodeAnnounce(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeAnnounce(Announce{Member{ID: "w1", Addr: "localhost:7071", Incarnation: 7}}))
	f.Add(EncodeAnnounce(Announce{Member{ID: "a", Addr: "b", Incarnation: 0}}))
	f.Add([]byte{'S', 'L', 'M', 1, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := DecodeAnnounce(b)
		if err != nil {
			return
		}
		re := EncodeAnnounce(a)
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted non-canonical encoding:\n in  %q\n out %q", b, re)
		}
		back, err := DecodeAnnounce(re)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if back != a {
			t.Fatalf("round trip drifted: %+v vs %+v", a, back)
		}
	})
}
