package membership

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member. 64 points per worker
// keeps the expected placement imbalance across a handful of partitions in
// the few-percent range while the ring stays tiny.
const DefaultVnodes = 64

// Ring places keys on members by consistent hashing: each member projects
// Vnodes points onto a 64-bit circle, and a key is owned by the first point
// clockwise from its hash. Adding or removing one member moves only the keys
// adjacent to its points — every other key keeps its owner, which is exactly
// what lets a rejoining worker re-attach to the partitions it already holds.
//
// Placement is a pure function of the member ID set (not incarnations or
// addresses, which change across restarts), so the same dataset re-lands on
// the same workers run after run — warm re-runs — as long as the fleet
// composition holds.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	owner string // member ID
}

// BuildRing constructs a ring over the member IDs. vnodes <= 0 selects
// DefaultVnodes. An empty ID set yields an ownerless ring.
func BuildRing(ids []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, id := range ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, v), owner: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on owner so equal hashes order deterministically
		// regardless of input order.
		return a.owner < b.owner
	})
	return r
}

// Owner returns the member owning key, or "", false on an empty ring.
func (r *Ring) Owner(key uint64) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].owner, true
}

// Len returns how many points the ring holds (for tests).
func (r *Ring) Len() int { return len(r.points) }

func pointHash(id string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	var b [9]byte
	b[0] = 0 // separator: "ab"+1 must not collide with "a"+0x62...
	binary.LittleEndian.PutUint64(b[1:], uint64(vnode))
	h.Write(b[:])
	// FNV-1a alone clusters badly on similar ids ("worker-0".."worker-3"
	// land lopsided arcs); the avalanche finalizer spreads the points so
	// per-member ownership stays near the fair share.
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche so every
// input bit flips about half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PartitionKey derives the stable placement key of one row partition:
// a pure function of the dataset's content signature, the partition count,
// and the partition index. The same dataset split the same way produces the
// same keys forever, which is what makes worker-side partition caches
// addressable across jobs and restarts.
func PartitionKey(dataSig uint64, nParts, part int) uint64 {
	h := fnv.New64a()
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], dataSig)
	binary.LittleEndian.PutUint64(b[8:], uint64(nParts))
	binary.LittleEndian.PutUint64(b[16:], uint64(part))
	h.Write(b[:])
	return mix64(h.Sum64())
}
