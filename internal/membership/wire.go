// Package membership turns slserve's hand-wired worker list into a
// self-forming fleet. Workers announce themselves to the driver and renew a
// lease; the driver-side Registrar maintains the live view with the same
// strike-based suspicion the between-level heartbeat prober uses (a member
// missing N consecutive lease windows is expired), and publishes every view
// change to watchers so a running job can rebalance mid-flight. Placement of
// content-addressed dataset partitions onto the live set goes through a
// consistent-hash Ring, so a worker that flaps and rejoins is handed back
// the partitions it is already warm for instead of being re-shipped the
// data.
//
// The package is transport-agnostic at its core (Registrar and Announcer
// speak through small function values); the bundled HTTP transport is what
// cmd/slserve (-listen-workers) and cmd/slworker (-join) wire up.
package membership

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unicode/utf8"
)

// Member identifies one worker in the fleet.
type Member struct {
	// ID is the worker's stable identity across restarts (slworker's -id
	// flag; defaults to its advertised address).
	ID string
	// Addr is the host:port of the worker's RPC listener, the address the
	// driver dials back.
	Addr string
	// Incarnation distinguishes process lifetimes of the same ID: a worker
	// bumps it on every restart, so the driver knows a rejoining member with
	// a higher incarnation has lost its loaded partitions, while one with an
	// unchanged incarnation (a lease that merely flapped) is still warm.
	Incarnation uint64
}

// Announce is the wire message a worker sends to join the fleet and to renew
// its lease — the two are the same message, so a worker that missed renewals
// long enough to be expired rejoins by doing nothing special.
type Announce struct {
	Member
}

// Wire format limits. Oversized fields are rejected at decode so a garbage
// stream cannot make the driver allocate unbounded memory.
const (
	maxIDLen   = 128
	maxAddrLen = 256
	// MaxAnnounceSize bounds one encoded announce message.
	MaxAnnounceSize = 4 + 1 + binary.MaxVarintLen64 + 2 + maxIDLen + maxAddrLen
)

// announceMagic versions the wire format: 3 magic bytes plus one version
// byte. Decoders reject anything else, so a future format bump is detected
// instead of misparsed.
var announceMagic = [4]byte{'S', 'L', 'M', 1}

var (
	// ErrBadAnnounce wraps every announce decode failure, matchable with
	// errors.Is.
	ErrBadAnnounce = errors.New("membership: malformed announce")
)

// EncodeAnnounce serializes an announce message. It panics on messages that
// violate the wire limits — the caller constructs them from validated flags.
func EncodeAnnounce(a Announce) []byte {
	if err := a.Member.validate(); err != nil {
		panic(fmt.Sprintf("membership: encoding invalid announce: %v", err))
	}
	buf := make([]byte, 0, MaxAnnounceSize)
	buf = append(buf, announceMagic[:]...)
	buf = appendString(buf, a.ID)
	buf = appendString(buf, a.Addr)
	buf = binary.AppendUvarint(buf, a.Incarnation)
	return buf
}

// DecodeAnnounce strictly parses an announce message: wrong magic or
// version, truncated or oversized fields, non-UTF-8 or control characters in
// the identity strings, and trailing bytes are all rejected. This is the
// surface FuzzDecodeAnnounce drives.
func DecodeAnnounce(b []byte) (Announce, error) {
	var a Announce
	if len(b) > MaxAnnounceSize {
		return a, fmt.Errorf("%w: %d bytes exceeds the %d-byte cap", ErrBadAnnounce, len(b), MaxAnnounceSize)
	}
	if len(b) < len(announceMagic) || [4]byte(b[:4]) != announceMagic {
		return a, fmt.Errorf("%w: bad magic or version", ErrBadAnnounce)
	}
	rest := b[4:]
	var err error
	if a.ID, rest, err = readString(rest, maxIDLen); err != nil {
		return a, fmt.Errorf("%w: id: %v", ErrBadAnnounce, err)
	}
	if a.Addr, rest, err = readString(rest, maxAddrLen); err != nil {
		return a, fmt.Errorf("%w: addr: %v", ErrBadAnnounce, err)
	}
	inc, n, err := readUvarint(rest)
	if err != nil {
		return a, fmt.Errorf("%w: incarnation: %v", ErrBadAnnounce, err)
	}
	a.Incarnation = inc
	if len(rest[n:]) != 0 {
		return a, fmt.Errorf("%w: %d trailing bytes", ErrBadAnnounce, len(rest[n:]))
	}
	if err := a.Member.validate(); err != nil {
		return a, fmt.Errorf("%w: %v", ErrBadAnnounce, err)
	}
	return a, nil
}

// validate checks the identity fields against the wire limits.
func (m Member) validate() error {
	if err := validateField(m.ID, maxIDLen); err != nil {
		return fmt.Errorf("id %q: %v", m.ID, err)
	}
	if err := validateField(m.Addr, maxAddrLen); err != nil {
		return fmt.Errorf("addr %q: %v", m.Addr, err)
	}
	return nil
}

func validateField(s string, max int) error {
	if s == "" {
		return errors.New("empty")
	}
	if len(s) > max {
		return fmt.Errorf("%d bytes exceeds the %d-byte cap", len(s), max)
	}
	if !utf8.ValidString(s) {
		return errors.New("not valid UTF-8")
	}
	for _, r := range s {
		if r < 0x20 || r == 0x7f {
			return errors.New("contains control characters")
		}
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(b []byte, max int) (string, []byte, error) {
	n, sz, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(max) {
		return "", nil, fmt.Errorf("%d bytes exceeds the %d-byte cap", n, max)
	}
	b = b[sz:]
	if uint64(len(b)) < n {
		return "", nil, errors.New("truncated body")
	}
	return string(b[:n]), b[n:], nil
}

// readUvarint decodes one minimally-encoded uvarint. Rejecting padded
// encodings (a trailing 0x00 continuation) gives every message exactly one
// valid byte form, which the fuzz target asserts by re-encoding.
func readUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, errors.New("truncated varint")
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, errors.New("non-minimal varint encoding")
	}
	return v, n, nil
}
