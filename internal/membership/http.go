package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// AnnouncePath is the driver-side endpoint the HTTP transport posts
// announces to, relative to the URL given to slworker's -join flag.
const AnnouncePath = "/v1/cluster/announce"

// Handler returns the driver-side membership HTTP surface:
//
//	POST /v1/cluster/announce   join / renew a lease (body: wire announce)
//	GET  /v1/cluster            operator view of the member table
//
// cmd/slserve mounts it on the -listen-workers listener.
func Handler(r *Registrar) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+AnnouncePath, func(w http.ResponseWriter, req *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, MaxAnnounceSize))
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("membership: reading announce: %w", err))
			return
		}
		a, err := DecodeAnnounce(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		reply, err := r.Announce(a)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrStaleIncarnation) {
				status = http.StatusConflict
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Version uint64         `json:"version"`
			Members []MemberStatus `json:"members"`
		}{Version: r.Version(), Members: r.Status()})
	})
	return mux
}

// HTTPTransport returns a Transport posting announces to the driver at
// base (e.g. "http://driver:7070"; with or without a trailing slash). A nil
// client selects one with a 5s timeout.
func HTTPTransport(base string, client *http.Client) Transport {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	url := trimTrailingSlash(base) + AnnouncePath
	return func(ctx context.Context, a Announce) (AnnounceReply, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(EncodeAnnounce(a)))
		if err != nil {
			return AnnounceReply{}, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := client.Do(req)
		if err != nil {
			return AnnounceReply{}, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if err != nil {
			return AnnounceReply{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return AnnounceReply{}, fmt.Errorf("membership: announce to %s: %s: %s",
				url, resp.Status, bytes.TrimSpace(body))
		}
		var reply AnnounceReply
		if err := json.Unmarshal(body, &reply); err != nil {
			return AnnounceReply{}, fmt.Errorf("membership: decoding announce reply: %w", err)
		}
		return reply, nil
	}
}

func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}
