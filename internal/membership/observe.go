package membership

import "sliceline/internal/obs"

// memObs bundles the registrar's pre-resolved sl_membership_* metric
// handles. With a nil registry every handle is nil and all updates are
// no-ops, matching the zero-cost-off convention of internal/core and
// internal/dist.
type memObs struct {
	announces   *obs.Counter
	joins       *obs.Counter
	rejoins     *obs.Counter
	expirations *obs.Counter
	stale       *obs.Counter
	members     *obs.Gauge
	version     *obs.Gauge
}

func newMemObs(r *obs.Registry) memObs {
	return memObs{
		announces:   r.Counter("sl_membership_announces_total", "Announce/renewal messages accepted by the registrar."),
		joins:       r.Counter("sl_membership_joins_total", "Workers joining the fleet for the first time."),
		rejoins:     r.Counter("sl_membership_rejoins_total", "Known workers re-announcing with a new incarnation or address."),
		expirations: r.Counter("sl_membership_expirations_total", "Workers expired after missing the lease strike limit."),
		stale:       r.Counter("sl_membership_stale_announces_total", "Announces rejected for carrying an outdated incarnation."),
		members:     r.Gauge("sl_membership_members", "Live workers in the current membership view."),
		version:     r.Gauge("sl_membership_view_version", "Monotonic membership view version."),
	}
}

// setMembers updates the live-view gauges.
func (o *memObs) setMembers(n int, version uint64) {
	o.members.Set(float64(n))
	o.version.Set(float64(version))
}
