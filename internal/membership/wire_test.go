package membership

import (
	"strings"
	"testing"
)

func TestAnnounceRoundTrip(t *testing.T) {
	cases := []Announce{
		{Member{ID: "w1", Addr: "localhost:7071", Incarnation: 0}},
		{Member{ID: "worker-αβ", Addr: "10.0.0.7:9999", Incarnation: 1<<64 - 1}},
		{Member{ID: strings.Repeat("x", maxIDLen), Addr: strings.Repeat("y", maxAddrLen), Incarnation: 42}},
	}
	for _, a := range cases {
		got, err := DecodeAnnounce(EncodeAnnounce(a))
		if err != nil {
			t.Fatalf("%+v: %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip: got %+v want %+v", got, a)
		}
	}
}

func TestDecodeAnnounceRejects(t *testing.T) {
	good := EncodeAnnounce(Announce{Member{ID: "w1", Addr: "h:1", Incarnation: 3}})
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XXXX"), good[4:]...),
		"bad version":     append([]byte{'S', 'L', 'M', 2}, good[4:]...),
		"truncated id":    good[:5],
		"truncated inc":   good[:len(good)-1],
		"trailing bytes":  append(append([]byte{}, good...), 0),
		"oversized":       make([]byte, MaxAnnounceSize+1),
		"huge length":     append([]byte{'S', 'L', 'M', 1, 0xff, 0xff, 0xff, 0x7f}, good[4:]...),
		"control char id": EncodeAnnounce(Announce{Member{ID: "ok", Addr: "h:1"}})[:0],
	}
	// The control-char case cannot be produced by EncodeAnnounce (it
	// panics); build the bytes by hand.
	raw := append([]byte{'S', 'L', 'M', 1}, 2, 'a', '\n', 3, 'h', ':', '1', 0)
	cases["control char id"] = raw
	for name, b := range cases {
		if _, err := DecodeAnnounce(b); err == nil {
			t.Errorf("%s: decode accepted %q", name, b)
		}
	}
}

func TestEncodeAnnouncePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic encoding an empty member")
		}
	}()
	EncodeAnnounce(Announce{})
}
