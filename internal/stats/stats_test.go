package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRegIncBetaBoundaries(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	for _, c := range []struct{ a, b, x float64 }{
		{2, 3, 0.3}, {0.5, 0.5, 0.7}, {5, 1, 0.2}, {10, 10, 0.5},
	} {
		lhs := regIncBeta(c.a, c.b, c.x)
		rhs := 1 - regIncBeta(c.b, c.a, 1-c.x)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Errorf("symmetry violated at %+v: %v vs %v", c, lhs, rhs)
		}
	}
}

func TestRegIncBetaUniformCase(t *testing.T) {
	// I_x(1,1) = x (Beta(1,1) is uniform).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// Reference upper-tail values: t=0 → 0.5 for any df; large df approaches
	// the normal distribution: P(T >= 1.96, df=1e6) ≈ 0.025.
	if got := TCDFUpper(0, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(T>=0) = %v, want 0.5", got)
	}
	if got := TCDFUpper(1.96, 1e6); math.Abs(got-0.025) > 1e-4 {
		t.Errorf("P(T>=1.96, df=1e6) = %v, want ≈ 0.025", got)
	}
	// df=1 (Cauchy): P(T >= 1) = 0.25 exactly.
	if got := TCDFUpper(1, 1); math.Abs(got-0.25) > 1e-10 {
		t.Errorf("P(T>=1, df=1) = %v, want 0.25", got)
	}
	// Monotone decreasing in t.
	prev := 1.0
	for _, tv := range []float64{-2, -1, 0, 1, 2, 5} {
		p := TCDFUpper(tv, 7)
		if p > prev {
			t.Errorf("TCDFUpper not monotone at t=%v", tv)
		}
		prev = p
	}
}

func TestTCDFInfiniteT(t *testing.T) {
	if got := TCDFUpper(math.Inf(1), 5); got != 0 {
		t.Errorf("P(T>=+Inf) = %v, want 0", got)
	}
	if got := TCDFUpper(math.Inf(-1), 5); got != 1 {
		t.Errorf("P(T>=-Inf) = %v, want 1", got)
	}
}

func TestWelchEqualSamples(t *testing.T) {
	tt, df := Welch(5, 1, 100, 5, 1, 100)
	if tt != 0 {
		t.Errorf("t = %v, want 0 for equal means", tt)
	}
	if df < 100 {
		t.Errorf("df = %v, unexpectedly small", df)
	}
}

func TestWelchZeroVariance(t *testing.T) {
	tt, _ := Welch(5, 0, 10, 3, 0, 10)
	if !math.IsInf(tt, 1) {
		t.Errorf("t = %v, want +Inf for zero variance different means", tt)
	}
	tt, _ = Welch(5, 0, 10, 5, 0, 10)
	if tt != 0 {
		t.Errorf("t = %v, want 0 for identical degenerate samples", tt)
	}
}

func TestWelchFractionalCounts(t *testing.T) {
	// Float counts slot straight in; a half-weighted sample behaves like a
	// smaller one: shrinking n1 shrinks t (for the same means/variances).
	tFull, _ := Welch(2, 1, 50, 1, 1, 500)
	tHalf, _ := Welch(2, 1, 25.5, 1, 1, 500)
	if !(tFull > tHalf && tHalf > 0) {
		t.Errorf("t not shrinking with n1: full=%v half=%v", tFull, tHalf)
	}
}

func TestEffectSize(t *testing.T) {
	if got := EffectSize(2, 1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("effect size = %v, want 1", got)
	}
	if got := EffectSize(1, 0, 1, 0); got != 0 {
		t.Errorf("degenerate equal = %v, want 0", got)
	}
	if got := EffectSize(2, 0, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("degenerate different = %v, want +Inf", got)
	}
}

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Textbook example: p = {0.01, 0.04, 0.03, 0.005}.
	// Sorted: 0.005, 0.01, 0.03, 0.04 → raw m*p/j: 0.02, 0.02, 0.04, 0.04;
	// step-up min-from-right leaves them as-is.
	p := []float64{0.01, 0.04, 0.03, 0.005}
	want := []float64{0.02, 0.04, 0.04, 0.02}
	q := BenjaminiHochberg(p)
	for i := range want {
		if math.Abs(q[i]-want[i]) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v (q=%v)", i, q[i], want[i], q)
		}
	}
}

func TestBenjaminiHochbergEdge(t *testing.T) {
	if got := BenjaminiHochberg(nil); len(got) != 0 {
		t.Errorf("empty input → %v, want empty", got)
	}
	q := BenjaminiHochberg([]float64{0.7})
	if len(q) != 1 || q[0] != 0.7 {
		t.Errorf("singleton q = %v, want [0.7]", q)
	}
	// All-ones stays clamped at 1.
	q = BenjaminiHochberg([]float64{1, 1, 1})
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %v, want 1", i, v)
		}
	}
}

func TestBenjaminiHochbergProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(20)
		p := make([]float64, m)
		for i := range p {
			p[i] = rng.Float64()
		}
		q := BenjaminiHochberg(p)
		// q >= p and q ∈ [0,1].
		for i := range p {
			if q[i] < p[i]-1e-15 {
				t.Fatalf("trial %d: q[%d]=%v < p=%v", trial, i, q[i], p[i])
			}
			if q[i] < 0 || q[i] > 1 {
				t.Fatalf("trial %d: q[%d]=%v out of [0,1]", trial, i, q[i])
			}
		}
		// Monotone: sorting pairs by p, q must be non-decreasing.
		idx := make([]int, m)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return p[idx[a]] < p[idx[b]] })
		for j := 1; j < m; j++ {
			if q[idx[j]] < q[idx[j-1]]-1e-15 {
				t.Fatalf("trial %d: q not monotone in p: %v at p %v", trial, q, p)
			}
		}
		// Input untouched.
		_ = p
	}
}
