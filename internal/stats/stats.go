// Package stats provides the statistical primitives shared by the result
// annotation layer (internal/core's per-slice significance guardrails) and
// the SliceFinder-style baseline (internal/baseline): Welch's unequal-variance
// t-test from summary statistics, Student's t tail probabilities via the
// regularized incomplete beta function, Cohen's d effect size, and
// Benjamini–Hochberg false-discovery-rate q-values. Everything operates on
// (mean, variance, count) summaries, so callers can feed it accumulator
// output without holding the raw samples.
package stats

import "math"

// Welch computes Welch's t statistic and degrees of freedom for two samples
// summarized by (mean, variance, count). Counts are float64 so weighted
// (fractional) sample sizes plug in directly; integer counts are exact.
// Callers must ensure n1 > 1 and n2 > 1 — below that the variance (and the
// Welch–Satterthwaite degrees of freedom) are undefined.
func Welch(m1, v1, n1, m2, v2, n2 float64) (t, df float64) {
	a := v1 / n1
	b := v2 / n2
	se := math.Sqrt(a + b)
	if se == 0 {
		if m1 == m2 {
			return 0, 1
		}
		if m1 > m2 {
			return math.Inf(1), 1
		}
		return math.Inf(-1), 1
	}
	t = (m1 - m2) / se
	den := a*a/(n1-1) + b*b/(n2-1)
	if den == 0 {
		df = n1 + n2 - 2
	} else {
		df = (a + b) * (a + b) / den
	}
	if df < 1 {
		df = 1
	}
	return t, df
}

// EffectSize computes the standardized difference of two distributions
// (Cohen's d with pooled variance), the SliceFinder effect-size measure.
func EffectSize(m1, v1, m2, v2 float64) float64 {
	pooled := math.Sqrt((v1 + v2) / 2)
	if pooled == 0 {
		if m1 == m2 {
			return 0
		}
		return math.Inf(1)
	}
	return (m1 - m2) / pooled
}

// TCDFUpper returns P(T >= t) for Student's t distribution with df degrees
// of freedom, via the regularized incomplete beta function.
func TCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	if math.IsInf(t, -1) {
		return 1
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t < 0 {
		return 1 - p
	}
	return p
}

// BenjaminiHochberg converts p-values into step-up FDR q-values over the
// family p: q_(i) = min_{j >= i} p_(j)·m/j with p sorted ascending, clamped
// to [0, 1] and mapped back to the input order. A slice is significant at
// FDR level alpha iff its q-value is <= alpha. The input is not modified.
// q-values are monotone in p: sorting the output by its p-value never
// decreases, and every q >= its p.
func BenjaminiHochberg(p []float64) []float64 {
	m := len(p)
	q := make([]float64, m)
	if m == 0 {
		return q
	}
	// Indices sorted by ascending p (stable insertion sort: families are
	// tiny — one per top-K — and this keeps ties in input order).
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && p[order[j]] < p[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	run := math.Inf(1)
	for j := m - 1; j >= 0; j-- {
		v := p[order[j]] * float64(m) / float64(j+1)
		if v < run {
			run = v
		}
		qv := run
		if qv > 1 {
			qv = 1
		}
		if qv < 0 {
			qv = 0
		}
		q[order[j]] = qv
	}
	return q
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Lentz's method), following the
// standard numerical-recipes formulation.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-30
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
