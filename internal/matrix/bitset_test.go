package matrix

import (
	"math/rand"
	"testing"
)

// randomCSR01 builds a random 0/1 CSR matrix with the given density,
// optionally planting explicit stored zeros (which PackColumns must skip,
// matching the CSR kernels' treatment).
func randomCSR01(rng *rand.Rand, rows, cols int, density float64, storedZeros bool) *CSR {
	var ts []Triple
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			switch {
			case rng.Float64() < density:
				ts = append(ts, Triple{Row: i, Col: j, Val: 1})
			case storedZeros && rng.Float64() < 0.05:
				ts = append(ts, Triple{Row: i, Col: j, Val: 0})
			}
		}
	}
	return CSRFromTriples(rows, cols, ts)
}

// naiveMembership counts rows with a nonzero in every one of the columns by
// scanning the matrix row by row — the specification CountAnd and the packed
// kernel must match exactly.
func naiveMembership(x *CSR, cols []int) int {
	if len(cols) == 0 {
		return 0
	}
	n := 0
	for i := 0; i < x.rows; i++ {
		all := true
		for _, c := range cols {
			if x.At(i, c) == 0 {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// TestPackColumnsMatchesCSR: every bit of the packed form equals the dense
// 0/1 view of the matrix, across ragged tail shapes (rows % 64 != 0), exact
// word multiples, empty columns, and stored zeros.
func TestPackColumnsMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ rows, cols int }{
		{1, 1}, {63, 3}, {64, 3}, {65, 3}, {128, 5}, {200, 8}, {1000, 12},
	}
	for _, sh := range shapes {
		x := randomCSR01(rng, sh.rows, sh.cols, 0.2, true)
		cb := PackColumns(x)
		if cb.Rows() != sh.rows || cb.Cols() != sh.cols {
			t.Fatalf("%dx%d: packed shape %dx%d", sh.rows, sh.cols, cb.Rows(), cb.Cols())
		}
		if want := (sh.rows + 63) / 64; cb.Words() != want {
			t.Fatalf("%dx%d: %d words per column, want %d", sh.rows, sh.cols, cb.Words(), want)
		}
		for c := 0; c < sh.cols; c++ {
			for i := 0; i < sh.rows; i++ {
				want := x.At(i, c) != 0
				if got := cb.Bit(c, i); got != want {
					t.Fatalf("%dx%d: bit (%d,%d) = %v, want %v", sh.rows, sh.cols, c, i, got, want)
				}
			}
		}
	}
}

// TestPackColumnsRaggedTailZero pins the tail-word invariant: bits past the
// last row are never set, so popcounts cannot overcount. An all-ones column
// makes every representable bit of the tail word a potential overcount.
func TestPackColumnsRaggedTailZero(t *testing.T) {
	for _, rows := range []int{1, 63, 65, 127, 130} {
		var ts []Triple
		for i := 0; i < rows; i++ {
			ts = append(ts, Triple{Row: i, Col: 0, Val: 1})
		}
		cb := PackColumns(CSRFromTriples(rows, 1, ts))
		if got := cb.CountCol(0); got != rows {
			t.Fatalf("rows=%d: all-ones column popcount %d", rows, got)
		}
		last := cb.Col(0)[cb.Words()-1]
		if tail := rows % 64; tail != 0 {
			if last>>uint(tail) != 0 {
				t.Fatalf("rows=%d: bits set past the last row in tail word %064b", rows, last)
			}
		}
	}
}

// TestCountAndMatchesNaive: AND+popcount membership counting equals the
// naive per-row scan for random matrices and random column conjunctions,
// including empty columns (no set bits) and empty conjunctions.
func TestCountAndMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(300)
		cols := 2 + rng.Intn(10)
		x := randomCSR01(rng, rows, cols, []float64{0.02, 0.2, 0.7}[trial%3], trial%2 == 0)
		cb := PackColumns(x)
		if cb.CountAnd(nil) != 0 {
			t.Fatal("empty conjunction must count 0 rows")
		}
		for sub := 0; sub < 10; sub++ {
			maxK := 4
			if cols < maxK {
				maxK = cols
			}
			k := 1 + rng.Intn(maxK)
			cand := make([]int, 0, k)
			for len(cand) < k {
				c := rng.Intn(cols)
				dup := false
				for _, have := range cand {
					dup = dup || have == c
				}
				if !dup {
					cand = append(cand, c)
				}
			}
			want := naiveMembership(x, cand)
			if got := cb.CountAnd(cand); got != want {
				t.Fatalf("trial %d (%dx%d): CountAnd(%v) = %d, want %d", trial, rows, cols, cand, got, want)
			}
		}
	}
}

// TestPackColumnsEmptyAndDegenerate covers the degenerate shapes: zero-row
// and zero-column matrices pack to empty storage without panicking.
func TestPackColumnsEmptyAndDegenerate(t *testing.T) {
	for _, sh := range []struct{ rows, cols int }{{0, 4}, {5, 0}, {0, 0}} {
		cb := PackColumns(CSRFromTriples(sh.rows, sh.cols, nil))
		if cb.Rows() != sh.rows || cb.Cols() != sh.cols {
			t.Fatalf("%dx%d: packed shape %dx%d", sh.rows, sh.cols, cb.Rows(), cb.Cols())
		}
		if cb.MemBytes() != int64(sh.cols*((sh.rows+63)/64))*8 {
			t.Fatalf("%dx%d: MemBytes %d", sh.rows, sh.cols, cb.MemBytes())
		}
		for c := 0; c < sh.cols; c++ {
			if cb.CountCol(c) != 0 {
				t.Fatalf("%dx%d: empty matrix has set bits in column %d", sh.rows, sh.cols, c)
			}
		}
	}
}

// FuzzBitsetPack feeds arbitrary byte strings as matrix shapes and cell
// contents and asserts PackColumns agrees with the CSR view bit-for-bit,
// plus the CountAnd-vs-naive-scan property on the first columns.
func FuzzBitsetPack(f *testing.F) {
	f.Add(uint16(65), uint8(3), []byte{0x01, 0x80, 0xff, 0x00})
	f.Add(uint16(64), uint8(1), []byte{0xaa})
	f.Add(uint16(1), uint8(8), []byte{})
	f.Fuzz(func(t *testing.T, rowsRaw uint16, colsRaw uint8, cells []byte) {
		rows := int(rowsRaw%300) + 1
		cols := int(colsRaw%12) + 1
		var ts []Triple
		// Cells drive both placement and value: odd bytes store 1, bytes
		// divisible by 16 store an explicit zero (packed as unset).
		for k, b := range cells {
			i := (k * 131) % rows
			j := int(b) % cols
			switch {
			case b%2 == 1:
				ts = append(ts, Triple{Row: i, Col: j, Val: 1})
			case b%16 == 0:
				ts = append(ts, Triple{Row: i, Col: j, Val: 0})
			}
		}
		x := CSRFromTriples(rows, cols, ts)
		cb := PackColumns(x)
		for c := 0; c < cols; c++ {
			count := 0
			for i := 0; i < rows; i++ {
				want := x.At(i, c) != 0
				if cb.Bit(c, i) != want {
					t.Fatalf("bit (%d,%d) mismatch", c, i)
				}
				if want {
					count++
				}
			}
			if cb.CountCol(c) != count {
				t.Fatalf("column %d popcount %d, want %d", c, cb.CountCol(c), count)
			}
		}
		pair := []int{0, cols - 1}
		if got, want := cb.CountAnd(pair), naiveMembership(x, pair); got != want {
			t.Fatalf("CountAnd(%v) = %d, want %d", pair, got, want)
		}
	})
}
