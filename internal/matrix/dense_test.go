package matrix

import (
	"math"
	"testing"
)

func TestNewDenseZeroed(t *testing.T) {
	d := NewDense(3, 4)
	if d.Rows() != 3 || d.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", d.Rows(), d.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if d.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, d.At(i, j))
			}
		}
	}
}

func TestDenseSetAt(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 2, 7.5)
	d.Set(0, 0, -1)
	if got := d.At(1, 2); got != 7.5 {
		t.Errorf("At(1,2) = %v, want 7.5", got)
	}
	if got := d.At(0, 0); got != -1 {
		t.Errorf("At(0,0) = %v, want -1", got)
	}
}

func TestDenseOutOfBoundsPanics(t *testing.T) {
	d := NewDense(2, 2)
	cases := []func(){
		func() { d.At(2, 0) },
		func() { d.At(0, 2) },
		func() { d.At(-1, 0) },
		func() { d.Set(0, -1, 1) },
		func() { d.Row(5) },
		func() { d.Col(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNewDenseDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestDenseTranspose(t *testing.T) {
	d := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := d.T()
	want := NewDenseData(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !tr.Equal(want) {
		t.Fatalf("T() = %v, want %v", tr, want)
	}
	if !tr.T().Equal(d) {
		t.Fatal("double transpose is not identity")
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDenseData(1, 2, []float64{1, 2})
	c := d.Clone()
	c.Set(0, 0, 9)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDenseAddSubMulElem(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	if got, want := Add(a, b), NewDenseData(2, 2, []float64{6, 8, 10, 12}); !got.Equal(want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := Sub(b, a), NewDenseData(2, 2, []float64{4, 4, 4, 4}); !got.Equal(want) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := MulElem(a, b), NewDenseData(2, 2, []float64{5, 12, 21, 32}); !got.Equal(want) {
		t.Errorf("MulElem = %v, want %v", got, want)
	}
}

func TestDenseShapeMismatchPanics(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(a, b)
}

func TestScaleRows(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	got := ScaleRows(a, []float64{10, 0.5})
	want := NewDenseData(2, 2, []float64{10, 20, 1.5, 2})
	if !got.Equal(want) {
		t.Fatalf("ScaleRows = %v, want %v", got, want)
	}
}

func TestCmpScalarIndicators(t *testing.T) {
	a := NewDenseData(1, 4, []float64{1, 2, 3, 2})
	if got, want := EqScalar(a, 2), NewDenseData(1, 4, []float64{0, 1, 0, 1}); !got.Equal(want) {
		t.Errorf("EqScalar = %v, want %v", got, want)
	}
	if got, want := GeScalar(a, 2), NewDenseData(1, 4, []float64{0, 1, 1, 1}); !got.Equal(want) {
		t.Errorf("GeScalar = %v, want %v", got, want)
	}
}

func TestSelectRowsCols(t *testing.T) {
	a := NewDenseData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if got, want := SelectRows(a, []int{2, 0}), NewDenseData(2, 3, []float64{7, 8, 9, 1, 2, 3}); !got.Equal(want) {
		t.Errorf("SelectRows = %v, want %v", got, want)
	}
	if got, want := SelectCols(a, []int{1}), NewDenseData(3, 1, []float64{2, 5, 8}); !got.Equal(want) {
		t.Errorf("SelectCols = %v, want %v", got, want)
	}
}

func TestRemoveEmptyRows(t *testing.T) {
	a := NewDenseData(4, 2, []float64{0, 0, 1, 0, 0, 0, 0, 3})
	got, idx := RemoveEmptyRows(a)
	want := NewDenseData(2, 2, []float64{1, 0, 0, 3})
	if !got.Equal(want) {
		t.Fatalf("RemoveEmptyRows = %v, want %v", got, want)
	}
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("retained indexes = %v, want [1 3]", idx)
	}
}

func TestRBindCBind(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(2, 2, []float64{3, 4, 5, 6})
	if got, want := RBind(a, b), NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6}); !got.Equal(want) {
		t.Errorf("RBind = %v, want %v", got, want)
	}
	c := NewDenseData(1, 1, []float64{9})
	if got, want := CBind(a, c), NewDenseData(1, 3, []float64{1, 2, 9}); !got.Equal(want) {
		t.Errorf("CBind = %v, want %v", got, want)
	}
}

func TestApplyAndScale(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 4, 9})
	a.Apply(math.Sqrt)
	if want := NewDenseData(1, 3, []float64{1, 2, 3}); !a.Equal(want) {
		t.Fatalf("Apply = %v, want %v", a, want)
	}
	a.Scale(2)
	if want := NewDenseData(1, 3, []float64{2, 4, 6}); !a.Equal(want) {
		t.Fatalf("Scale = %v, want %v", a, want)
	}
}

func TestEqualApprox(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{1.0000001, 2})
	if !a.EqualApprox(b, 1e-6) {
		t.Error("EqualApprox(1e-6) = false, want true")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Error("EqualApprox(1e-9) = true, want false")
	}
	if a.EqualApprox(NewDense(2, 1), 1) {
		t.Error("EqualApprox with shape mismatch = true, want false")
	}
}
