package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

// csrPrefixWithRemap builds the "accumulated" CSR for an append schedule:
// rows [0, upto) of full, with columns passed through remap into newCols.
func csrPrefixWithRemap(full *CSR, upto, newCols int, remap []int) *CSR {
	var ts []Triple
	for i := 0; i < upto; i++ {
		cols, vals := full.RowEntries(i)
		for k, c := range cols {
			nc := c
			if remap != nil {
				nc = remap[c]
			}
			ts = append(ts, Triple{Row: i, Col: nc, Val: vals[k]})
		}
	}
	return CSRFromTriples(upto, newCols, ts)
}

// TestAppendRowsMatchesPack: growing a packed bitset row-batch by row-batch
// must land bit-identical to packing the accumulated matrix from scratch,
// across word-boundary crossings and stored zeros.
func TestAppendRowsMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		rows, cols int
		cuts       []int // prefix sizes; last must equal rows
	}{
		{rows: 10, cols: 4, cuts: []int{3, 7, 10}},
		{rows: 130, cols: 6, cuts: []int{60, 64, 65, 128, 130}}, // crosses both word boundaries
		{rows: 64, cols: 3, cuts: []int{1, 64}},                 // exact word fill
		{rows: 200, cols: 9, cuts: []int{199, 200}},
	} {
		full := randomCSR01(rng, tc.rows, tc.cols, 0.3, true)
		first := csrPrefixWithRemap(full, tc.cuts[0], tc.cols, nil)
		cb := PackColumns(first)
		for _, cut := range tc.cuts[1:] {
			acc := csrPrefixWithRemap(full, cut, tc.cols, nil)
			if err := cb.AppendRows(acc); err != nil {
				t.Fatalf("AppendRows to %d rows: %v", cut, err)
			}
			want := PackColumns(acc)
			if !reflect.DeepEqual(cb, want) {
				t.Fatalf("rows=%d cols=%d cut=%d: incremental pack differs from scratch", tc.rows, tc.cols, cut)
			}
		}
	}
}

// TestRemapColsThenAppend models a domain-growth generation: remap columns
// into a wider space (new columns interleaved), then append rows that
// populate them. The result must equal packing the final matrix outright.
func TestRemapColsThenAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	oldCols, newCols := 5, 8
	remap := []int{0, 1, 3, 4, 6} // blocks shifted as by two mid-block insertions
	nOld, nNew := 70, 70+61       // crosses a word boundary too

	full := randomCSR01(rng, nNew, newCols, 0.3, false)
	// Old rows must not touch the new columns (codes allocated by the append);
	// rebuild the prefix restricted to remap targets, as real growth behaves.
	inOld := make(map[int]bool, len(remap))
	for _, nc := range remap {
		inOld[nc] = true
	}
	var ts []Triple
	for i := 0; i < nNew; i++ {
		cols, vals := full.RowEntries(i)
		for k, c := range cols {
			if i < nOld && !inOld[c] {
				continue
			}
			ts = append(ts, Triple{Row: i, Col: c, Val: vals[k]})
		}
	}
	final := CSRFromTriples(nNew, newCols, ts)

	// The pre-growth matrix: old rows, old column space (inverse remap).
	inv := make([]int, newCols)
	for i := range inv {
		inv[i] = -1
	}
	for c, nc := range remap {
		inv[nc] = c
	}
	var oldTs []Triple
	for i := 0; i < nOld; i++ {
		cols, vals := final.RowEntries(i)
		for k, c := range cols {
			oldTs = append(oldTs, Triple{Row: i, Col: inv[c], Val: vals[k]})
		}
	}
	cb := PackColumns(CSRFromTriples(nOld, oldCols, oldTs))

	if err := cb.RemapCols(newCols, remap); err != nil {
		t.Fatalf("RemapCols: %v", err)
	}
	if err := cb.AppendRows(final); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	if want := PackColumns(final); !reflect.DeepEqual(cb, want) {
		t.Fatal("remap+append differs from packing the final matrix from scratch")
	}
}

func TestRemapColsErrors(t *testing.T) {
	cb := PackColumns(CSRFromTriples(4, 3, []Triple{{Row: 0, Col: 0, Val: 1}}))
	if err := cb.RemapCols(4, []int{0, 1}); err == nil {
		t.Error("short remap: want error")
	}
	if err := cb.RemapCols(2, []int{0, 1, 1}); err == nil {
		t.Error("shrink: want error")
	}
	if err := cb.RemapCols(4, []int{0, 1, 4}); err == nil {
		t.Error("out-of-bounds target: want error")
	}
	if err := cb.RemapCols(4, []int{0, 1, 1}); err == nil {
		t.Error("duplicate target: want error")
	}
	// cb must be unchanged after the failed calls.
	if cb.Cols() != 3 || !cb.Bit(0, 0) {
		t.Error("failed RemapCols mutated the bitset")
	}
}

func TestAppendRowsErrors(t *testing.T) {
	cb := PackColumns(CSRFromTriples(4, 3, nil))
	if err := cb.AppendRows(CSRFromTriples(6, 2, nil)); err == nil {
		t.Error("column mismatch: want error")
	}
	if err := cb.AppendRows(CSRFromTriples(2, 3, nil)); err == nil {
		t.Error("row shrink: want error")
	}
	// No-op append (same row count) is legal.
	if err := cb.AppendRows(CSRFromTriples(4, 3, nil)); err != nil {
		t.Errorf("same-size append: %v", err)
	}
}
