// Package matrix provides the dense and sparse (CSR) linear-algebra kernels
// that SliceLine's enumeration algorithm is built on. It implements the
// primitive set used by the paper's DML/R scripts — contingency tables,
// matrix multiplication, column/row aggregates, element-wise comparisons,
// removeEmpty, cumulative sums — for both dense and compressed-sparse-row
// operands, with shared-memory parallel kernels for the hot paths.
//
// Dimension mismatches are programming errors and panic, mirroring the
// behaviour of established Go numeric libraries; data-dependent failures
// (for example singular systems in the solver) return errors.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) in a Dense without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// NewVector returns an n×1 dense matrix with the given values copied in.
func NewVector(v []float64) *Dense {
	d := NewDense(len(v), 1)
	copy(d.data, v)
	return d
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// At returns the element at row i, column j.
func (d *Dense) At(i, j int) float64 {
	d.check(i, j)
	return d.data[i*d.cols+j]
}

// Set assigns the element at row i, column j.
func (d *Dense) Set(i, j int, v float64) {
	d.check(i, j)
	d.data[i*d.cols+j] = v
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.rows || j < 0 || j >= d.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of bounds %dx%d", i, j, d.rows, d.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (d *Dense) Row(i int) []float64 {
	if i < 0 || i >= d.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds %d", i, d.rows))
	}
	return d.data[i*d.cols : (i+1)*d.cols]
}

// Data returns the underlying row-major storage without copying.
func (d *Dense) Data() []float64 { return d.data }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.rows, d.cols)
	copy(c.data, d.data)
	return c
}

// Col returns column j as a newly allocated slice.
func (d *Dense) Col(j int) []float64 {
	if j < 0 || j >= d.cols {
		panic(fmt.Sprintf("matrix: column %d out of bounds %d", j, d.cols))
	}
	out := make([]float64, d.rows)
	for i := 0; i < d.rows; i++ {
		out[i] = d.data[i*d.cols+j]
	}
	return out
}

// T returns the transpose as a new dense matrix.
func (d *Dense) T() *Dense {
	t := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		ri := d.data[i*d.cols : (i+1)*d.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Equal reports whether d and o have identical shape and elements.
func (d *Dense) Equal(o *Dense) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether d and o agree element-wise within tol.
func (d *Dense) EqualApprox(o *Dense, tol float64) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i, v := range d.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (d *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d", d.rows, d.cols)
	if d.rows > maxShow || d.cols > maxShow {
		return b.String()
	}
	for i := 0; i < d.rows; i++ {
		b.WriteString("\n[")
		for j := 0; j < d.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%g", d.At(i, j))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Apply replaces every element with f(element) in place and returns d.
func (d *Dense) Apply(f func(float64) float64) *Dense {
	for i, v := range d.data {
		d.data[i] = f(v)
	}
	return d
}

// Scale multiplies every element by s in place and returns d.
func (d *Dense) Scale(s float64) *Dense {
	for i := range d.data {
		d.data[i] *= s
	}
	return d
}

func (d *Dense) sameShape(o *Dense, op string) {
	if d.rows != o.rows || d.cols != o.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, d.rows, d.cols, o.rows, o.cols))
	}
}

// Add stores a+b into a new matrix.
func Add(a, b *Dense) *Dense {
	a.sameShape(b, "Add")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub stores a-b into a new matrix.
func Sub(a, b *Dense) *Dense {
	a.sameShape(b, "Sub")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// MulElem stores the element-wise (Hadamard) product a⊙b into a new matrix.
func MulElem(a, b *Dense) *Dense {
	a.sameShape(b, "MulElem")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// ScaleRows multiplies row i of a by v[i] and returns a new matrix. It is the
// broadcast used by the paper for I·e (weighting indicator rows by errors).
func ScaleRows(a *Dense, v []float64) *Dense {
	if len(v) != a.rows {
		panic(fmt.Sprintf("matrix: ScaleRows vector length %d vs %d rows", len(v), a.rows))
	}
	out := NewDense(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		s := v[i]
		ri := a.data[i*a.cols : (i+1)*a.cols]
		oi := out.data[i*a.cols : (i+1)*a.cols]
		for j, x := range ri {
			oi[j] = x * s
		}
	}
	return out
}

// CmpScalar returns a 0/1 matrix where out[i,j] = 1 iff cmp(a[i,j], s) holds.
func CmpScalar(a *Dense, s float64, cmp func(x, s float64) bool) *Dense {
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		if cmp(v, s) {
			out.data[i] = 1
		}
	}
	return out
}

// EqScalar returns the 0/1 indicator of a[i,j] == s.
func EqScalar(a *Dense, s float64) *Dense {
	return CmpScalar(a, s, func(x, s float64) bool { return x == s })
}

// GeScalar returns the 0/1 indicator of a[i,j] >= s.
func GeScalar(a *Dense, s float64) *Dense {
	return CmpScalar(a, s, func(x, s float64) bool { return x >= s })
}

// SelectRows returns a new matrix with the rows of a at the given indices,
// in order.
func SelectRows(a *Dense, idx []int) *Dense {
	out := NewDense(len(idx), a.cols)
	for k, i := range idx {
		if i < 0 || i >= a.rows {
			panic(fmt.Sprintf("matrix: SelectRows index %d out of bounds %d", i, a.rows))
		}
		copy(out.Row(k), a.Row(i))
	}
	return out
}

// SelectCols returns a new matrix with the columns of a at the given indices,
// in order.
func SelectCols(a *Dense, idx []int) *Dense {
	out := NewDense(a.rows, len(idx))
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		oi := out.Row(i)
		for k, j := range idx {
			if j < 0 || j >= a.cols {
				panic(fmt.Sprintf("matrix: SelectCols index %d out of bounds %d", j, a.cols))
			}
			oi[k] = ri[j]
		}
	}
	return out
}

// UpperTriEq returns the (row, col) index pairs of the strict upper triangle
// of a square matrix where the value equals v — the paper's
// upper.tri((S·Sᵀ) = (L−2), values=TRUE) pair-join primitive.
func UpperTriEq(a *Dense, v float64) (rows, cols []int) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: UpperTriEq of non-square %dx%d", a.rows, a.cols))
	}
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		for j := i + 1; j < a.cols; j++ {
			if ri[j] == v {
				rows = append(rows, i)
				cols = append(cols, j)
			}
		}
	}
	return rows, cols
}

// Recip returns the element-wise reciprocal with 1/0 mapped to 0 instead of
// +Inf, the "replace ∞ with 0" convention of Equation 8.
func Recip(a *Dense) *Dense {
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		if v != 0 {
			out.data[i] = 1 / v
		}
	}
	return out
}

// RemoveEmptyRows drops all-zero rows, mirroring removeEmpty(margin="rows").
// It returns the compacted matrix and the original indexes of retained rows.
func RemoveEmptyRows(a *Dense) (*Dense, []int) {
	var keep []int
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		for _, v := range ri {
			if v != 0 {
				keep = append(keep, i)
				break
			}
		}
	}
	return SelectRows(a, keep), keep
}

// RBind stacks a on top of b.
func RBind(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("matrix: RBind column mismatch %d vs %d", a.cols, b.cols))
	}
	out := NewDense(a.rows+b.rows, a.cols)
	copy(out.data, a.data)
	copy(out.data[len(a.data):], b.data)
	return out
}

// CBind places a to the left of b.
func CBind(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("matrix: CBind row mismatch %d vs %d", a.rows, b.rows))
	}
	out := NewDense(a.rows, a.cols+b.cols)
	for i := 0; i < a.rows; i++ {
		copy(out.Row(i)[:a.cols], a.Row(i))
		copy(out.Row(i)[a.cols:], b.Row(i))
	}
	return out
}
