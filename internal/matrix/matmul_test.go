package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMul is the O(n³) reference implementation all kernels are checked
// against.
func naiveMul(a, b *Dense) *Dense {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			s := 0.0
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	d := NewDense(r, c)
	for i := range d.Data() {
		d.Data()[i] = float64(rng.Intn(7)) - 3
	}
	return d
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		r, k, c := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a, b := randomDense(rng, r, k), randomDense(rng, k, c)
		if got, want := MatMul(a, b), naiveMul(a, b); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("trial %d: MatMul mismatch", trial)
		}
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulCSRDenseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		r, k, c := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a := randomCSR(rng, r, k, 0.4)
		b := randomDense(rng, k, c)
		if got, want := MulCSRDense(a, b), naiveMul(a.ToDense(), b); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("trial %d: MulCSRDense mismatch", trial)
		}
	}
}

func TestMulCSRTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		r, k, s := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a := randomCSR(rng, r, k, 0.4)
		b := randomCSR(rng, s, k, 0.4)
		want := naiveMul(a.ToDense(), b.ToDense().T())
		if got := MulCSRT(a, b); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("trial %d: MulCSRT mismatch", trial)
		}
	}
}

func TestMulCSRCSRMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		r, k, c := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a := randomCSR(rng, r, k, 0.4)
		b := randomCSR(rng, k, c, 0.4)
		want := naiveMul(a.ToDense(), b.ToDense())
		if got := MulCSRCSR(a, b); !got.ToDense().EqualApprox(want, 1e-12) {
			t.Fatalf("trial %d: MulCSRCSR mismatch", trial)
		}
	}
}

func TestVecMatCSRMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		r, c := 1+rng.Intn(9), 1+rng.Intn(9)
		m := randomCSR(rng, r, c, 0.5)
		e := make([]float64, r)
		for i := range e {
			e[i] = rng.Float64()
		}
		got := VecMatCSR(e, m)
		want := naiveMul(NewDenseData(1, r, e), m.ToDense())
		for j := 0; j < c; j++ {
			if diff := got[j] - want.At(0, j); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("trial %d: VecMatCSR[%d] = %v, want %v", trial, j, got[j], want.At(0, j))
			}
		}
	}
}

func TestMulCSRVecMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randomCSR(rng, 7, 5, 0.5)
	v := []float64{1, -2, 3, 0, 0.5}
	got := MulCSRVec(m, v)
	want := MatVec(m.ToDense(), v)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MulCSRVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) on small integer-valued matrices.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(16))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b, c := randomDense(rng, n, n), randomDense(rng, n, n), randomDense(rng, n, n)
		return MatMul(MatMul(a, b), c).EqualApprox(MatMul(a, MatMul(b, c)), 1e-9)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1023} {
		covered := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, c)
			}
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	old := SetMaxWorkers(1)
	defer SetMaxWorkers(old)
	if MaxWorkers() != 1 {
		t.Fatalf("MaxWorkers = %d, want 1", MaxWorkers())
	}
	// Kernels must still be correct single-threaded.
	rng := rand.New(rand.NewSource(17))
	a, b := randomDense(rng, 5, 4), randomDense(rng, 4, 6)
	if !MatMul(a, b).EqualApprox(naiveMul(a, b), 1e-12) {
		t.Fatal("single-threaded MatMul mismatch")
	}
	if SetMaxWorkers(0); MaxWorkers() != 1 {
		t.Fatal("SetMaxWorkers(0) should clamp to 1")
	}
}

func TestSortInts(t *testing.T) {
	a := []int{5, 1, 4, 1, 3}
	sortInts(a)
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			t.Fatalf("not sorted: %v", a)
		}
	}
	sortInts(nil) // must not panic
}
