package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD reports that a Cholesky factorization failed because the input
// was not (numerically) symmetric positive definite.
var ErrNotSPD = errors.New("matrix: not symmetric positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ. The input
// must be square and symmetric positive definite; otherwise ErrNotSPD is
// returned. It backs the normal-equation solver used for linear regression.
func Cholesky(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Cholesky of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			li := l.Row(i)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrNotSPD
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return l, nil
}

// SolveSPD solves a·x = b for symmetric positive definite a via Cholesky
// factorization and forward/back substitution.
func SolveSPD(a *Dense, b []float64) ([]float64, error) {
	if len(b) != a.rows {
		panic(fmt.Sprintf("matrix: SolveSPD rhs length %d vs %d rows", len(b), a.rows))
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		li := l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveRidge solves (aᵀa + λI)·x = aᵀb, the ridge-regularized normal
// equations, for a dense design matrix a and response b.
func SolveRidge(a *Dense, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.rows {
		panic(fmt.Sprintf("matrix: SolveRidge rhs length %d vs %d rows", len(b), a.rows))
	}
	ata := MatMul(a.T(), a)
	for i := 0; i < ata.rows; i++ {
		ata.Set(i, i, ata.At(i, i)+lambda)
	}
	atb := MatVec(a.T(), b)
	return SolveSPD(ata, atb)
}
