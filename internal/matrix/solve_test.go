package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyKnownFactor(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		4, 12, -16,
		12, 37, -43,
		-16, -43, 98,
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDenseData(3, 3, []float64{
		2, 0, 0,
		6, 1, 0,
		-8, 5, 3,
	})
	if !l.EqualApprox(want, 1e-12) {
		t.Fatalf("Cholesky = %v, want %v", l, want)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cholesky(NewDense(2, 3))
}

func TestSolveSPDRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		// Build SPD matrix A = BᵀB + n·I.
		b := randomDense(rng, n, n)
		a := MatMul(b.T(), b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := MatVec(a, xTrue)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveRidgeRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, p := 200, 4
	a := NewDense(n, p)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	wTrue := []float64{1.5, -2, 0.5, 3}
	y := MatVec(a, wTrue)
	w, err := SolveRidge(a, y, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(w[i]-wTrue[i]) > 1e-5 {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], wTrue[i])
		}
	}
}
