package matrix

import (
	"fmt"
	"math"
)

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1)
	}
	return d
}

// Diag returns a square matrix with v on its diagonal.
func Diag(v []float64) *Dense {
	d := NewDense(len(v), len(v))
	for i, x := range v {
		d.Set(i, i, x)
	}
	return d
}

// DiagOf extracts the main diagonal of a matrix.
func DiagOf(a *Dense) []float64 {
	n := a.rows
	if a.cols < n {
		n = a.cols
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = a.At(i, i)
	}
	return out
}

// Trace returns the sum of the main diagonal of a square matrix.
func Trace(a *Dense) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Trace of non-square %dx%d", a.rows, a.cols))
	}
	s := 0.0
	for i := 0; i < a.rows; i++ {
		s += a.At(i, i)
	}
	return s
}

// Seq returns the vector (from, from+1, ..., to) inclusive, the DML seq()
// primitive.
func Seq(from, to int) []float64 {
	if to < from {
		return nil
	}
	out := make([]float64, to-from+1)
	for i := range out {
		out[i] = float64(from + i)
	}
	return out
}

// NormL1 returns the sum of absolute values of all elements.
func NormL1(a *Dense) float64 {
	s := 0.0
	for _, v := range a.data {
		s += math.Abs(v)
	}
	return s
}

// NormFrobenius returns the Frobenius norm sqrt(sum a_ij²).
func NormFrobenius(a *Dense) float64 {
	s := 0.0
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormMax returns the largest absolute element.
func NormMax(a *Dense) float64 {
	s := 0.0
	for _, v := range a.data {
		if x := math.Abs(v); x > s {
			s = x
		}
	}
	return s
}

// ScaleCSR returns a copy of m with every stored value multiplied by s.
func ScaleCSR(m *CSR, s float64) *CSR {
	out := m.Clone()
	for i := range out.val {
		out.val[i] *= s
	}
	return out
}

// AddCSR returns the sparse sum a + b.
func AddCSR(a, b *CSR) *CSR {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: AddCSR shape mismatch %dx%d vs %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	rowPtr := make([]int, a.rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < a.rows; i++ {
		ac, av := a.RowEntries(i)
		bc, bv := b.RowEntries(i)
		x, y := 0, 0
		for x < len(ac) || y < len(bc) {
			switch {
			case y == len(bc) || (x < len(ac) && ac[x] < bc[y]):
				colIdx = append(colIdx, ac[x])
				val = append(val, av[x])
				x++
			case x == len(ac) || bc[y] < ac[x]:
				colIdx = append(colIdx, bc[y])
				val = append(val, bv[y])
				y++
			default:
				if s := av[x] + bv[y]; s != 0 {
					colIdx = append(colIdx, ac[x])
					val = append(val, s)
				}
				x++
				y++
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{rows: a.rows, cols: a.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// RowL2Norms returns the Euclidean norm of each row of a CSR matrix, used
// for normalization and similarity computations over slice matrices.
func RowL2Norms(m *CSR) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		_, vals := m.RowEntries(i)
		s := 0.0
		for _, v := range vals {
			s += v * v
		}
		out[i] = math.Sqrt(s)
	}
	return out
}
