package matrix

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestColSumsAndMaxs(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, -5, 2, 0, 3, 4})
	if got := ColSums(a); !reflect.DeepEqual(got, []float64{6, -1}) {
		t.Errorf("ColSums = %v, want [6 -1]", got)
	}
	if got := ColMaxs(a); !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Errorf("ColMaxs = %v, want [3 4]", got)
	}
}

func TestRowSumsMaxsIndexMax(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 9, 2, -1, -2, -3})
	if got := RowSums(a); !reflect.DeepEqual(got, []float64{12, -6}) {
		t.Errorf("RowSums = %v, want [12 -6]", got)
	}
	if got := RowMaxs(a); !reflect.DeepEqual(got, []float64{9, -1}) {
		t.Errorf("RowMaxs = %v, want [9 -1]", got)
	}
	if got := RowIndexMax(a); !reflect.DeepEqual(got, []int{1, 0}) {
		t.Errorf("RowIndexMax = %v, want [1 0]", got)
	}
}

func TestRowIndexMaxFirstOccurrence(t *testing.T) {
	a := NewDenseData(1, 4, []float64{2, 7, 7, 1})
	if got := RowIndexMax(a); got[0] != 1 {
		t.Fatalf("RowIndexMax tie = %d, want 1 (first occurrence)", got[0])
	}
}

func TestEmptyAggregates(t *testing.T) {
	a := NewDense(0, 3)
	if got := ColMaxs(a); !reflect.DeepEqual(got, []float64{0, 0, 0}) {
		t.Errorf("ColMaxs of empty = %v, want zeros", got)
	}
	b := NewDense(2, 0)
	if got := RowMaxs(b); !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Errorf("RowMaxs of zero-width = %v, want zeros", got)
	}
}

func TestCSRAggregatesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.4)
		d := m.ToDense()
		if got, want := ColSumsCSR(m), ColSums(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ColSumsCSR = %v, want %v", trial, got, want)
		}
		if got, want := RowSumsCSR(m), RowSums(d); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: RowSumsCSR = %v, want %v", trial, got, want)
		}
	}
}

func TestColMaxsCSRNonNegative(t *testing.T) {
	// randomCSR produces positive values, where stored-max == true max.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.4)
		got := ColMaxsCSR(m)
		want := ColMaxs(m.ToDense())
		for j := range got {
			// Columns with no entries: CSR reports 0, dense reports 0 too
			// because randomCSR values are >= 1 and ColMaxs clamps empties.
			if got[j] != want[j] && !(got[j] == 0 && want[j] == 0) {
				t.Fatalf("trial %d col %d: %v vs %v", trial, j, got[j], want[j])
			}
		}
	}
}

func TestVecHelpers(t *testing.T) {
	v := []float64{3, -1, 4, 1}
	if got := VecSum(v); got != 7 {
		t.Errorf("VecSum = %v, want 7", got)
	}
	if got := VecMax(v); got != 4 {
		t.Errorf("VecMax = %v, want 4", got)
	}
	if got := VecMin(v); got != -1 {
		t.Errorf("VecMin = %v, want -1", got)
	}
	if VecMax(nil) != 0 || VecMin(nil) != 0 || VecSum(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestCumSumCumProd(t *testing.T) {
	if got := CumSum([]float64{1, 2, 3}); !reflect.DeepEqual(got, []float64{1, 3, 6}) {
		t.Errorf("CumSum = %v, want [1 3 6]", got)
	}
	if got := CumProd([]float64{2, 3, 4}); !reflect.DeepEqual(got, []float64{2, 6, 24}) {
		t.Errorf("CumProd = %v, want [2 6 24]", got)
	}
	if got := CumSum(nil); len(got) != 0 {
		t.Errorf("CumSum(nil) = %v, want empty", got)
	}
}
