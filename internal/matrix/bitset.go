package matrix

import (
	"fmt"
	"math/bits"
)

// ColumnBits is a packed column-major bitset view of a 0/1 matrix: bit i of
// column c is set exactly when row i stores a nonzero in column c. Each
// column occupies ceil(rows/64) consecutive uint64 words, so testing whether
// a row satisfies a conjunction of columns is a word-wise AND and counting
// the rows that do is math/bits.OnesCount64 — the slice-membership primitive
// of SliceLine's evaluation kernel (Section 4.4 / Equation 10) without
// materializing the n × nrow(S) indicator.
//
// The layout trades memory for scan speed: a ColumnBits always costs
// rows·cols/8 bytes regardless of sparsity, where CSR costs O(nnz). The
// break-even sits near one set bit per 64-bit word (column density 1/64);
// core's kernel selection applies exactly that rule.
type ColumnBits struct {
	rows, cols int
	words      int      // per-column word count, ceil(rows/64)
	bits       []uint64 // cols*words; column c occupies bits[c*words:(c+1)*words]
}

// PackColumns packs every column of a CSR matrix into bitsets. Stored zeros
// (possible after triple summation) are not set, matching the CSR kernels'
// treatment of explicit zeros. Bits past the last row in the ragged tail
// word (rows % 64 != 0) are always zero, so popcounts never overcount.
func PackColumns(x *CSR) *ColumnBits {
	words := (x.rows + 63) / 64
	cb := &ColumnBits{
		rows:  x.rows,
		cols:  x.cols,
		words: words,
		bits:  make([]uint64, x.cols*words),
	}
	for i := 0; i < x.rows; i++ {
		w := i >> 6
		bit := uint64(1) << uint(i&63)
		cols, vals := x.RowEntries(i)
		for k, c := range cols {
			if vals[k] != 0 {
				cb.bits[c*words+w] |= bit
			}
		}
	}
	return cb
}

// Rows returns the row count of the packed matrix.
func (cb *ColumnBits) Rows() int { return cb.rows }

// Cols returns the column count of the packed matrix.
func (cb *ColumnBits) Cols() int { return cb.cols }

// Words returns the number of 64-bit words per column.
func (cb *ColumnBits) Words() int { return cb.words }

// MemBytes returns the size of the packed bit storage in bytes.
func (cb *ColumnBits) MemBytes() int64 { return int64(len(cb.bits)) * 8 }

// Col returns the packed words of column c, aliasing the internal storage.
// Callers must not mutate the returned slice.
func (cb *ColumnBits) Col(c int) []uint64 {
	if c < 0 || c >= cb.cols {
		panic(fmt.Sprintf("matrix: ColumnBits column %d out of bounds %d", c, cb.cols))
	}
	return cb.bits[c*cb.words : (c+1)*cb.words]
}

// Bit reports whether row i is set in column c.
func (cb *ColumnBits) Bit(c, i int) bool {
	if i < 0 || i >= cb.rows {
		panic(fmt.Sprintf("matrix: ColumnBits row %d out of bounds %d", i, cb.rows))
	}
	return cb.Col(c)[i>>6]&(uint64(1)<<uint(i&63)) != 0
}

// CountCol returns the popcount of column c (the column's nonzero count).
func (cb *ColumnBits) CountCol(c int) int {
	n := 0
	for _, w := range cb.Col(c) {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountAnd returns the number of rows set in every one of the given columns
// — the size of the slice defined by that conjunction of one-hot predicates.
// An empty column list returns 0.
func (cb *ColumnBits) CountAnd(cols []int) int {
	if len(cols) == 0 {
		return 0
	}
	a := cb.Col(cols[0])
	n := 0
	for k := 0; k < cb.words; k++ {
		w := a[k]
		for j := 1; j < len(cols) && w != 0; j++ {
			w &= cb.Col(cols[j])[k]
		}
		n += bits.OnesCount64(w)
	}
	return n
}
