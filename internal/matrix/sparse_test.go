package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCSRFromTriplesBasic(t *testing.T) {
	m := CSRFromTriples(3, 3, []Triple{
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 0, Val: 5},
		{Row: 0, Col: 0, Val: 1},
	})
	want := NewDenseData(3, 3, []float64{1, 2, 0, 0, 0, 0, 5, 0, 0})
	if !m.ToDense().Equal(want) {
		t.Fatalf("CSRFromTriples = %v, want %v", m.ToDense(), want)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCSRFromTriplesSumsDuplicates(t *testing.T) {
	// table(rix, cix) semantics: duplicates accumulate.
	m := CSRFromTriples(2, 2, []Triple{
		{Row: 1, Col: 1, Val: 1},
		{Row: 1, Col: 1, Val: 1},
		{Row: 1, Col: 1, Val: 1},
	})
	if got := m.At(1, 1); got != 3 {
		t.Fatalf("At(1,1) = %v, want 3", got)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 after merging", m.NNZ())
	}
}

func TestCSRFromTriplesOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CSRFromTriples(2, 2, []Triple{{Row: 2, Col: 0, Val: 1}})
}

func TestCSRRoundTripDense(t *testing.T) {
	d := NewDenseData(3, 4, []float64{
		0, 1, 0, 2,
		0, 0, 0, 0,
		3, 0, 4, 0,
	})
	m := CSRFromDense(d)
	if !m.ToDense().Equal(d) {
		t.Fatalf("round trip = %v, want %v", m.ToDense(), d)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if got := m.Density(); got != 4.0/12.0 {
		t.Fatalf("Density = %v, want %v", got, 4.0/12.0)
	}
}

func TestCSRAt(t *testing.T) {
	m := CSRFromTriples(2, 5, []Triple{
		{Row: 0, Col: 4, Val: 9},
		{Row: 0, Col: 1, Val: 3},
	})
	if got := m.At(0, 1); got != 3 {
		t.Errorf("At(0,1) = %v, want 3", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Errorf("At(0,2) = %v, want 0", got)
	}
	if got := m.At(1, 4); got != 0 {
		t.Errorf("At(1,4) = %v, want 0", got)
	}
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var ts []Triple
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				ts = append(ts, Triple{Row: i, Col: j, Val: float64(rng.Intn(9) + 1)})
			}
		}
	}
	return CSRFromTriples(rows, cols, ts)
}

func TestCSRTransposeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.3)
		if !m.T().ToDense().Equal(m.ToDense().T()) {
			t.Fatalf("trial %d: CSR transpose disagrees with dense transpose", trial)
		}
	}
}

func TestCSRTransposeInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(8), 1+rng.Intn(8), 0.4)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCSRSelectRows(t *testing.T) {
	m := CSRFromDense(NewDenseData(3, 2, []float64{1, 0, 0, 2, 3, 4}))
	got := m.SelectRows([]int{2, 2, 0})
	want := NewDenseData(3, 2, []float64{3, 4, 3, 4, 1, 0})
	if !got.ToDense().Equal(want) {
		t.Fatalf("SelectRows = %v, want %v", got.ToDense(), want)
	}
}

func TestCSRSelectCols(t *testing.T) {
	m := CSRFromDense(NewDenseData(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8}))
	got := m.SelectCols([]int{1, 3})
	want := NewDenseData(2, 2, []float64{2, 4, 6, 8})
	if !got.ToDense().Equal(want) {
		t.Fatalf("SelectCols = %v, want %v", got.ToDense(), want)
	}
}

func TestCSRSelectColsRequiresIncreasing(t *testing.T) {
	m := CSRFromDense(NewDenseData(1, 3, []float64{1, 2, 3}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing column selection")
		}
	}()
	m.SelectCols([]int{2, 1})
}

func TestCSRRemoveEmptyRows(t *testing.T) {
	m := CSRFromDense(NewDenseData(4, 2, []float64{0, 0, 1, 0, 0, 0, 2, 2}))
	got, idx := m.RemoveEmptyRows()
	if got.Rows() != 2 || !reflect.DeepEqual(idx, []int{1, 3}) {
		t.Fatalf("RemoveEmptyRows rows=%d idx=%v, want 2 rows idx [1 3]", got.Rows(), idx)
	}
}

func TestRBindCSR(t *testing.T) {
	a := CSRFromDense(NewDenseData(1, 3, []float64{1, 0, 2}))
	b := CSRFromDense(NewDenseData(2, 3, []float64{0, 3, 0, 4, 0, 0}))
	got := RBindCSR(a, b).ToDense()
	want := NewDenseData(3, 3, []float64{1, 0, 2, 0, 3, 0, 4, 0, 0})
	if !got.Equal(want) {
		t.Fatalf("RBindCSR = %v, want %v", got, want)
	}
}

func TestCSRCloneIndependent(t *testing.T) {
	a := CSRFromDense(NewDenseData(1, 2, []float64{1, 2}))
	c := a.Clone()
	c.val[0] = 99
	if a.val[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCSRRowEntriesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := randomCSR(rng, 6, 12, 0.5)
		for i := 0; i < m.Rows(); i++ {
			cols, _ := m.RowEntries(i)
			for k := 1; k < len(cols); k++ {
				if cols[k-1] >= cols[k] {
					t.Fatalf("trial %d row %d: columns not strictly increasing: %v", trial, i, cols)
				}
			}
		}
	}
}

func TestCSREmptyShapes(t *testing.T) {
	m := CSRFromTriples(0, 5, nil)
	if m.Rows() != 0 || m.NNZ() != 0 || m.Density() != 0 {
		t.Fatal("empty matrix invariants violated")
	}
	tr := m.T()
	if tr.Rows() != 5 || tr.Cols() != 0 {
		t.Fatalf("transpose of 0x5 = %dx%d, want 5x0", tr.Rows(), tr.Cols())
	}
}
