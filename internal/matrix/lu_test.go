package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 8, 4, 6})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Fatalf("det = %v, want -14", got)
	}
	// Identity has determinant 1.
	fi, err := FactorLU(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Det(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("det(I) = %v, want 1", got)
	}
}

func TestSolveRandomProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(70))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewDense(n, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MatVec(a, xTrue)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	a := NewDenseData(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(a, inv).EqualApprox(Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ != I: %v", MatMul(a, inv))
	}
	if _, err := Inverse(NewDense(2, 2)); err != ErrSingular {
		t.Fatalf("Inverse(0) err = %v, want ErrSingular", err)
	}
}

func TestFactorLUNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FactorLU(NewDense(2, 3))
}
