package matrix

import (
	"fmt"
	"sort"
)

// CSR is a compressed-sparse-row matrix. Column indices within each row are
// stored in ascending order. It is the workhorse representation for the
// one-hot encoded dataset X and the slice matrix S, both of which are
// extremely sparse 0/1 matrices in SliceLine.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSR assembles a CSR matrix from raw components without copying. The
// caller guarantees rowPtr has length rows+1, rowPtr[rows] == len(colIdx) ==
// len(val), and column indices are sorted within each row.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	if len(rowPtr) != rows+1 {
		panic(fmt.Sprintf("matrix: rowPtr length %d for %d rows", len(rowPtr), rows))
	}
	if rowPtr[rows] != len(colIdx) || len(colIdx) != len(val) {
		panic("matrix: inconsistent CSR buffers")
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Triple is one (row, col, value) entry used to build sparse matrices. It is
// the Go analogue of the paper's table(rix, cix) contingency-table primitive.
type Triple struct {
	Row, Col int
	Val      float64
}

// CSRFromTriples builds an r×c CSR matrix from unordered triples. Values at
// duplicate coordinates are summed, exactly like table() counts duplicate
// index pairs.
func CSRFromTriples(r, c int, ts []Triple) *CSR {
	counts := make([]int, r+1)
	for _, t := range ts {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			panic(fmt.Sprintf("matrix: triple (%d,%d) out of bounds %dx%d", t.Row, t.Col, r, c))
		}
		counts[t.Row+1]++
	}
	for i := 0; i < r; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(ts))
	val := make([]float64, len(ts))
	next := make([]int, r)
	copy(next, counts[:r])
	for _, t := range ts {
		p := next[t.Row]
		colIdx[p] = t.Col
		val[p] = t.Val
		next[t.Row]++
	}
	m := &CSR{rows: r, cols: c, rowPtr: counts, colIdx: colIdx, val: val}
	m.sortAndMergeRows()
	return m
}

// sortAndMergeRows sorts each row's entries by column and sums duplicates.
func (m *CSR) sortAndMergeRows() {
	newPtr := make([]int, m.rows+1)
	w := 0
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		row := rowView{cols: m.colIdx[lo:hi], vals: m.val[lo:hi]}
		sort.Sort(row)
		newPtr[i] = w
		for k := lo; k < hi; k++ {
			if w > newPtr[i] && m.colIdx[w-1] == m.colIdx[k] {
				m.val[w-1] += m.val[k]
				continue
			}
			m.colIdx[w] = m.colIdx[k]
			m.val[w] = m.val[k]
			w++
		}
	}
	newPtr[m.rows] = w
	m.rowPtr = newPtr
	m.colIdx = m.colIdx[:w]
	m.val = m.val[:w]
}

type rowView struct {
	cols []int
	vals []float64
}

func (r rowView) Len() int           { return len(r.cols) }
func (r rowView) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowView) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// CSRFromDense converts a dense matrix, dropping exact zeros.
func CSRFromDense(d *Dense) *CSR {
	rowPtr := make([]int, d.rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < d.rows; i++ {
		ri := d.Row(i)
		for j, v := range ri {
			if v != 0 {
				colIdx = append(colIdx, j)
				val = append(val, v)
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{rows: d.rows, cols: d.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Components returns the raw CSR buffers (rowPtr, colIdx, values) without
// copying, for serialization; reconstruct with NewCSR. Callers must not
// mutate the returned slices.
func (m *CSR) Components() (rowPtr, colIdx []int, val []float64) {
	return m.rowPtr, m.colIdx, m.val
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored (non-zero) entries.
func (m *CSR) NNZ() int { return len(m.val) }

// Density returns NNZ / (rows*cols), or 0 for an empty shape.
func (m *CSR) Density() float64 {
	if m.rows == 0 || m.cols == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.rows) * float64(m.cols))
}

// RowNNZ returns the nonzero count of row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// RowEntries returns the column indices and values of row i, aliasing the
// matrix storage.
func (m *CSR) RowEntries(i int) ([]int, []float64) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of bounds %d", i, m.rows))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// At returns the element at row i, column j (O(log nnz(row))).
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.RowEntries(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// ToDense materializes the matrix densely.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowEntries(i)
		ri := d.Row(i)
		for k, j := range cols {
			ri[j] = vals[k]
		}
	}
	return d
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		val:    append([]float64(nil), m.val...),
	}
	return c
}

// T returns the transpose in CSR form (a CSR-to-CSC re-bucketing pass).
func (m *CSR) T() *CSR {
	counts := make([]int, m.cols+1)
	for _, j := range m.colIdx {
		counts[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		counts[j+1] += counts[j]
	}
	colIdx := make([]int, len(m.colIdx))
	val := make([]float64, len(m.val))
	next := make([]int, m.cols)
	copy(next, counts[:m.cols])
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowEntries(i)
		for k, j := range cols {
			p := next[j]
			colIdx[p] = i
			val[p] = vals[k]
			next[j]++
		}
	}
	return &CSR{rows: m.cols, cols: m.rows, rowPtr: counts, colIdx: colIdx, val: val}
}

// SelectRows returns a new CSR with the rows at the given indices, in order.
func (m *CSR) SelectRows(idx []int) *CSR {
	rowPtr := make([]int, len(idx)+1)
	nnz := 0
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("matrix: SelectRows index %d out of bounds %d", i, m.rows))
		}
		nnz += m.RowNNZ(i)
		rowPtr[k+1] = nnz
	}
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for _, i := range idx {
		cols, vals := m.RowEntries(i)
		colIdx = append(colIdx, cols...)
		val = append(val, vals...)
	}
	return &CSR{rows: len(idx), cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// SelectCols returns a new CSR restricted to the given columns; column k of
// the result is column idx[k] of m. idx must be strictly increasing.
func (m *CSR) SelectCols(idx []int) *CSR {
	remap := make(map[int]int, len(idx))
	prev := -1
	for k, j := range idx {
		if j <= prev || j >= m.cols {
			panic(fmt.Sprintf("matrix: SelectCols indices must be increasing and in range, got %v", idx))
		}
		remap[j] = k
		prev = j
	}
	rowPtr := make([]int, m.rows+1)
	var colIdx []int
	var val []float64
	for i := 0; i < m.rows; i++ {
		cols, vals := m.RowEntries(i)
		for k, j := range cols {
			if nj, ok := remap[j]; ok {
				colIdx = append(colIdx, nj)
				val = append(val, vals[k])
			}
		}
		rowPtr[i+1] = len(colIdx)
	}
	return &CSR{rows: m.rows, cols: len(idx), rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// RemoveEmptyRows drops rows with no stored entries and returns the original
// indexes of retained rows.
func (m *CSR) RemoveEmptyRows() (*CSR, []int) {
	var keep []int
	for i := 0; i < m.rows; i++ {
		if m.RowNNZ(i) > 0 {
			keep = append(keep, i)
		}
	}
	return m.SelectRows(keep), keep
}

// RBindCSR stacks a on top of b.
func RBindCSR(a, b *CSR) *CSR {
	if a.cols != b.cols {
		panic(fmt.Sprintf("matrix: RBindCSR column mismatch %d vs %d", a.cols, b.cols))
	}
	rowPtr := make([]int, a.rows+b.rows+1)
	copy(rowPtr, a.rowPtr)
	off := a.rowPtr[a.rows]
	for i := 1; i <= b.rows; i++ {
		rowPtr[a.rows+i] = off + b.rowPtr[i]
	}
	colIdx := make([]int, 0, a.NNZ()+b.NNZ())
	colIdx = append(colIdx, a.colIdx...)
	colIdx = append(colIdx, b.colIdx...)
	val := make([]float64, 0, a.NNZ()+b.NNZ())
	val = append(val, a.val...)
	val = append(val, b.val...)
	return &CSR{rows: a.rows + b.rows, cols: a.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Equal reports whether m and o represent the same matrix (shape and values,
// ignoring explicitly stored zeros).
func (m *CSR) Equal(o *CSR) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	return m.ToDense().Equal(o.ToDense())
}
