package matrix

import "math"

// ColSums returns the per-column sums of a dense matrix as a slice of length
// Cols. It corresponds to the paper's colSums(X).
func ColSums(a *Dense) []float64 {
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		for j, v := range ri {
			out[j] += v
		}
	}
	return out
}

// ColMaxs returns the per-column maxima of a dense matrix. Columns of an
// empty (0-row) matrix report 0, matching the semantics the algorithm needs
// for max-error aggregation over empty slices.
func ColMaxs(a *Dense) []float64 {
	out := make([]float64, a.cols)
	if a.rows == 0 {
		return out
	}
	for j := range out {
		out[j] = math.Inf(-1)
	}
	for i := 0; i < a.rows; i++ {
		ri := a.Row(i)
		for j, v := range ri {
			if v > out[j] {
				out[j] = v
			}
		}
	}
	return out
}

// RowSums returns the per-row sums of a dense matrix.
func RowSums(a *Dense) []float64 {
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		s := 0.0
		for _, v := range a.Row(i) {
			s += v
		}
		out[i] = s
	}
	return out
}

// RowMaxs returns the per-row maxima of a dense matrix; empty-width rows
// report 0.
func RowMaxs(a *Dense) []float64 {
	out := make([]float64, a.rows)
	if a.cols == 0 {
		return out
	}
	for i := 0; i < a.rows; i++ {
		m := math.Inf(-1)
		for _, v := range a.Row(i) {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// RowIndexMax returns, per row, the 0-based column index of the row maximum
// (first occurrence). It mirrors the paper's rowIndexMax primitive.
func RowIndexMax(a *Dense) []int {
	out := make([]int, a.rows)
	for i := 0; i < a.rows; i++ {
		best, bi := math.Inf(-1), 0
		for j, v := range a.Row(i) {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// ColSumsCSR returns the per-column sums of a CSR matrix.
func ColSumsCSR(m *CSR) []float64 {
	out := make([]float64, m.cols)
	for k, j := range m.colIdx {
		out[j] += m.val[k]
	}
	return out
}

// ColMaxsCSR returns the per-column maxima of a CSR matrix, treating
// unstored entries as 0. A column whose stored entries are all negative
// therefore reports 0 when the column has any structural zero; for the 0/1
// indicator and non-negative error matrices SliceLine uses, this matches
// colMaxs exactly.
func ColMaxsCSR(m *CSR) []float64 {
	out := make([]float64, m.cols)
	for k, j := range m.colIdx {
		if m.val[k] > out[j] {
			out[j] = m.val[k]
		}
	}
	return out
}

// RowSumsCSR returns the per-row sums of a CSR matrix.
func RowSumsCSR(m *CSR) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		_, vals := m.RowEntries(i)
		s := 0.0
		for _, v := range vals {
			s += v
		}
		out[i] = s
	}
	return out
}

// VecSum returns the sum of v.
func VecSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// VecMax returns the maximum of v, or 0 for an empty slice.
func VecMax(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// VecMin returns the minimum of v, or 0 for an empty slice.
func VecMin(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CumSum returns the inclusive prefix sums of v, the paper's cumsum.
func CumSum(v []float64) []float64 {
	out := make([]float64, len(v))
	s := 0.0
	for i, x := range v {
		s += x
		out[i] = s
	}
	return out
}

// CumProd returns the inclusive prefix products of v, the paper's cumprod.
func CumProd(v []float64) []float64 {
	out := make([]float64, len(v))
	p := 1.0
	for i, x := range v {
		p *= x
		out[i] = p
	}
	return out
}
