package matrix

import "fmt"

// RemapCols rewrites the packed layout for a column-space change: the words
// of old column c move to new column remap[c], and columns without a preimage
// (newly allocated one-hot codes) start all-zero. This is the growth half of
// streaming appends — when a feature's domain grows, the blocked one-hot
// layout shifts later columns right, and the packed bitset follows without
// re-reading any row data. Rows are untouched; newCols must cover every
// remap target.
func (cb *ColumnBits) RemapCols(newCols int, remap []int) error {
	if len(remap) != cb.cols {
		return fmt.Errorf("matrix: RemapCols remap has %d entries, want %d", len(remap), cb.cols)
	}
	if newCols < cb.cols {
		return fmt.Errorf("matrix: RemapCols cannot shrink %d columns to %d", cb.cols, newCols)
	}
	seen := make([]bool, newCols)
	for c, nc := range remap {
		if nc < 0 || nc >= newCols {
			return fmt.Errorf("matrix: RemapCols target %d of column %d out of bounds %d", nc, c, newCols)
		}
		if seen[nc] {
			return fmt.Errorf("matrix: RemapCols target %d mapped twice", nc)
		}
		seen[nc] = true
	}
	nb := make([]uint64, newCols*cb.words)
	for c, nc := range remap {
		copy(nb[nc*cb.words:(nc+1)*cb.words], cb.bits[c*cb.words:(c+1)*cb.words])
	}
	cb.cols = newCols
	cb.bits = nb
	return nil
}

// AppendRows extends the packed bitset to cover x's full row range, packing
// only the rows past the current row count. x is the accumulated CSR after
// the append: its first Rows() rows must be the matrix cb was packed from
// (post-remap), and its column count must match. When the per-column word
// count is unchanged (the new row count stays within the current tail words)
// the new bits land in place, O(new nnz); when rows cross a word boundary the
// storage is re-strided first, O(cols·words) word copies — still never
// re-reading old row data.
func (cb *ColumnBits) AppendRows(x *CSR) error {
	if x.cols != cb.cols {
		return fmt.Errorf("matrix: AppendRows column mismatch: csr has %d, bitset has %d", x.cols, cb.cols)
	}
	if x.rows < cb.rows {
		return fmt.Errorf("matrix: AppendRows csr has %d rows, bitset already covers %d", x.rows, cb.rows)
	}
	newWords := (x.rows + 63) / 64
	if newWords > cb.words {
		nb := make([]uint64, cb.cols*newWords)
		for c := 0; c < cb.cols; c++ {
			copy(nb[c*newWords:], cb.bits[c*cb.words:(c+1)*cb.words])
		}
		cb.bits = nb
		cb.words = newWords
	}
	for i := cb.rows; i < x.rows; i++ {
		w := i >> 6
		bit := uint64(1) << uint(i&63)
		cols, vals := x.RowEntries(i)
		for k, c := range cols {
			if vals[k] != 0 {
				cb.bits[c*cb.words+w] |= bit
			}
		}
	}
	cb.rows = x.rows
	return nil
}
