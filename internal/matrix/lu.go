package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports that a factorization or solve encountered a
// (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// LU is an LU factorization with partial pivoting: P·A = L·U with unit
// diagonal L. It backs the general (non-SPD) solver and determinant.
type LU struct {
	lu    *Dense
	pivot []int
	sign  float64
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: FactorLU of non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: the largest magnitude in column k at or below the
		// diagonal.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		pivot[k] = p
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			lu.Set(i, k, f)
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("matrix: LU solve rhs length %d vs %d", len(b), n))
	}
	x := append([]float64(nil), b...)
	// Apply the pivot permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= ri[k] * x[k]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= ri[k] * x[k]
		}
		d := ri[i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	det := f.sign
	for i := 0; i < f.lu.rows; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Solve solves the general square system a·x = b via LU with partial
// pivoting.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ for a square non-singular matrix, column by column.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
