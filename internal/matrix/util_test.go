package matrix

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	if Trace(i3) != 3 {
		t.Errorf("Trace(I3) = %v", Trace(i3))
	}
	d := Diag([]float64{1, 2, 3})
	if !reflect.DeepEqual(DiagOf(d), []float64{1, 2, 3}) {
		t.Errorf("DiagOf = %v", DiagOf(d))
	}
	if d.At(0, 1) != 0 {
		t.Error("off-diagonal not zero")
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Trace(NewDense(2, 3))
}

func TestSeq(t *testing.T) {
	if got := Seq(1, 4); !reflect.DeepEqual(got, []float64{1, 2, 3, 4}) {
		t.Errorf("Seq(1,4) = %v", got)
	}
	if got := Seq(5, 4); got != nil {
		t.Errorf("Seq(5,4) = %v, want nil", got)
	}
}

func TestNorms(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, -4, 0, 0})
	if got := NormL1(a); got != 7 {
		t.Errorf("NormL1 = %v, want 7", got)
	}
	if got := NormFrobenius(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("NormFrobenius = %v, want 5", got)
	}
	if got := NormMax(a); got != 4 {
		t.Errorf("NormMax = %v, want 4", got)
	}
}

func TestScaleCSR(t *testing.T) {
	m := CSRFromDense(NewDenseData(2, 2, []float64{1, 0, 2, 3}))
	s := ScaleCSR(m, -2)
	want := NewDenseData(2, 2, []float64{-2, 0, -4, -6})
	if !s.ToDense().Equal(want) {
		t.Fatalf("ScaleCSR = %v, want %v", s.ToDense(), want)
	}
	// Original untouched.
	if m.At(0, 0) != 1 {
		t.Fatal("ScaleCSR mutated input")
	}
}

func TestAddCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 40; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomCSR(rng, r, c, 0.4)
		b := randomCSR(rng, r, c, 0.4)
		got := AddCSR(a, b).ToDense()
		want := Add(a.ToDense(), b.ToDense())
		if !got.Equal(want) {
			t.Fatalf("trial %d: AddCSR mismatch", trial)
		}
	}
}

func TestAddCSRCancellationDropsZeros(t *testing.T) {
	a := CSRFromDense(NewDenseData(1, 2, []float64{5, 1}))
	b := CSRFromDense(NewDenseData(1, 2, []float64{-5, 1}))
	sum := AddCSR(a, b)
	if sum.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled entry dropped)", sum.NNZ())
	}
	if sum.At(0, 1) != 2 {
		t.Fatalf("At(0,1) = %v, want 2", sum.At(0, 1))
	}
}

func TestAddCSRShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddCSR(CSRFromTriples(1, 2, nil), CSRFromTriples(2, 2, nil))
}

func TestRowL2Norms(t *testing.T) {
	m := CSRFromDense(NewDenseData(2, 3, []float64{3, 4, 0, 0, 0, 0}))
	got := RowL2Norms(m)
	if math.Abs(got[0]-5) > 1e-12 || got[1] != 0 {
		t.Fatalf("RowL2Norms = %v, want [5 0]", got)
	}
}

func TestUpperTriEq(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		9, 1, 2,
		1, 9, 1,
		2, 1, 9,
	})
	rows, cols := UpperTriEq(a, 1)
	if !reflect.DeepEqual(rows, []int{0, 1}) || !reflect.DeepEqual(cols, []int{1, 2}) {
		t.Fatalf("UpperTriEq = %v/%v, want [0 1]/[1 2]", rows, cols)
	}
}

func TestUpperTriEqNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UpperTriEq(NewDense(2, 3), 1)
}

func TestRecip(t *testing.T) {
	a := NewDenseData(1, 3, []float64{2, 0, -4})
	got := Recip(a)
	want := NewDenseData(1, 3, []float64{0.5, 0, -0.25})
	if !got.Equal(want) {
		t.Fatalf("Recip = %v, want %v", got, want)
	}
}
