package matrix

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the goroutines used by parallel kernels. It defaults to
// GOMAXPROCS and can be lowered to model the paper's parallelism sweeps.
var maxWorkers int64 = int64(runtime.GOMAXPROCS(0))

// SetMaxWorkers bounds the parallel kernels to n goroutines (n >= 1). It
// returns the previous setting so callers can restore it.
func SetMaxWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(atomic.SwapInt64(&maxWorkers, int64(n)))
}

// MaxWorkers reports the current parallelism bound.
func MaxWorkers() int { return int(atomic.LoadInt64(&maxWorkers)) }

// ParallelFor splits [0,n) into contiguous chunks and runs fn(lo,hi) on up
// to MaxWorkers goroutines. fn must be safe for concurrent invocation on
// disjoint ranges. It is exported so higher layers (slice evaluation, the
// simulated cluster) share one parallelism policy.
func ParallelFor(n int, fn func(lo, hi int)) {
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes the dense product a·b.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: MatMul inner dimension mismatch %d vs %d", a.cols, b.rows))
	}
	out := NewDense(a.rows, b.cols)
	ParallelFor(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Row(i)
			oi := out.Row(i)
			for k, av := range ai {
				if av == 0 {
					continue
				}
				bk := b.Row(k)
				for j, bv := range bk {
					oi[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulCSRDense computes the product m·b of a sparse left operand and dense
// right operand.
func MulCSRDense(m *CSR, b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: MulCSRDense inner dimension mismatch %d vs %d", m.cols, b.rows))
	}
	out := NewDense(m.rows, b.cols)
	ParallelFor(m.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.RowEntries(i)
			oi := out.Row(i)
			for k, c := range cols {
				av := vals[k]
				bc := b.Row(c)
				for j, bv := range bc {
					oi[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulCSRT computes a·bᵀ for two CSR operands sharing their column dimension,
// producing a dense a.Rows×b.Rows result. This is the kernel behind both the
// pair-join S⊙Sᵀ (Eq. 6) and the slice evaluation X⊙Sᵀ (Eq. 10); the output
// row count is the number of left rows, so callers keep the smaller operand
// on the right or use the fused streaming kernels in package core when the
// output would be too large.
func MulCSRT(a, b *CSR) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulCSRT column dimension mismatch %d vs %d", a.cols, b.cols))
	}
	bt := b.T() // column c → rows of b containing c
	out := NewDense(a.rows, b.rows)
	ParallelFor(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := a.RowEntries(i)
			oi := out.Row(i)
			for k, c := range cols {
				av := vals[k]
				bRows, bVals := bt.RowEntries(c)
				for t, r := range bRows {
					oi[r] += av * bVals[t]
				}
			}
		}
	})
	return out
}

// MulCSRCSR computes the sparse product a·b in CSR form using the classic
// Gustavson row-wise algorithm with a dense accumulator per worker.
func MulCSRCSR(a, b *CSR) *CSR {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: MulCSRCSR inner dimension mismatch %d vs %d", a.cols, b.rows))
	}
	type rowResult struct {
		cols []int
		vals []float64
	}
	results := make([]rowResult, a.rows)
	ParallelFor(a.rows, func(lo, hi int) {
		acc := make([]float64, b.cols)
		mark := make([]int, b.cols)
		for i := range mark {
			mark[i] = -1
		}
		for i := lo; i < hi; i++ {
			aCols, aVals := a.RowEntries(i)
			var touched []int
			for k, c := range aCols {
				av := aVals[k]
				bCols, bVals := b.RowEntries(c)
				for t, j := range bCols {
					if mark[j] != i {
						mark[j] = i
						acc[j] = 0
						touched = append(touched, j)
					}
					acc[j] += av * bVals[t]
				}
			}
			sortInts(touched)
			cols := make([]int, 0, len(touched))
			vals := make([]float64, 0, len(touched))
			for _, j := range touched {
				if acc[j] != 0 {
					cols = append(cols, j)
					vals = append(vals, acc[j])
				}
			}
			results[i] = rowResult{cols, vals}
		}
	})
	rowPtr := make([]int, a.rows+1)
	nnz := 0
	for i, r := range results {
		nnz += len(r.cols)
		rowPtr[i+1] = nnz
	}
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for _, r := range results {
		colIdx = append(colIdx, r.cols...)
		val = append(val, r.vals...)
	}
	return &CSR{rows: a.rows, cols: b.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

func sortInts(a []int) {
	// Insertion sort: rows touched per product row are short in SliceLine's
	// workloads, where slices hold at most m predicates.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// VecMatCSR computes eᵀ·m for a row vector e, returning a slice of length
// m.Cols. It implements the paper's (eᵀ ⊙ X)ᵀ slice-error aggregation.
func VecMatCSR(e []float64, m *CSR) []float64 {
	if len(e) != m.rows {
		panic(fmt.Sprintf("matrix: VecMatCSR vector length %d vs %d rows", len(e), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		ei := e[i]
		if ei == 0 {
			continue
		}
		cols, vals := m.RowEntries(i)
		for k, j := range cols {
			out[j] += ei * vals[k]
		}
	}
	return out
}

// MulCSRVec computes m·v, returning a slice of length m.Rows.
func MulCSRVec(m *CSR, v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: MulCSRVec vector length %d vs %d cols", len(v), m.cols))
	}
	out := make([]float64, m.rows)
	ParallelFor(m.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, vals := m.RowEntries(i)
			s := 0.0
			for k, j := range cols {
				s += vals[k] * v[j]
			}
			out[i] = s
		}
	})
	return out
}

// MatVec computes a·v for a dense matrix.
func MatVec(a *Dense, v []float64) []float64 {
	if len(v) != a.cols {
		panic(fmt.Sprintf("matrix: MatVec vector length %d vs %d cols", len(v), a.cols))
	}
	out := make([]float64, a.rows)
	ParallelFor(a.rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for j, x := range a.Row(i) {
				s += x * v[j]
			}
			out[i] = s
		}
	})
	return out
}
