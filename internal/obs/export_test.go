package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fixed, deterministic contents —
// every metric kind, labeled and unlabeled names — so the exporter output is
// byte-stable.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sl_candidates_total", "Slice candidates evaluated.").Add(12345)
	r.Counter(`sl_rpc_total{op="eval",worker="0"}`, "Worker RPCs issued.").Add(41)
	r.Counter(`sl_rpc_total{op="eval",worker="1"}`, "ignored duplicate help").Add(40)
	r.Gauge("sl_topk_threshold", "Current top-K pruning threshold.").Set(0.125)
	r.Gauge(`sl_worker_inflight{worker="0"}`, "In-flight RPCs per worker.").Set(2)
	h := r.Histogram("sl_eval_seconds", "Candidate evaluation latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", b.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// The golden file must also be valid JSON.
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, b.String())
	}
	checkGolden(t, "metrics.json", b.Bytes())
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "sl_candidates_total 12345") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}

	body, ct = get("/metrics.json")
	if !strings.Contains(body, `"sl_topk_threshold": 0.125`) {
		t.Fatalf("/metrics.json missing gauge:\n%s", body)
	}
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json content type %q", ct)
	}

	body, _ = get("/debug/vars")
	if !strings.Contains(body, "memstats") {
		t.Fatal("/debug/vars missing expvar memstats")
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing goroutine profile link")
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", goldenRegistry())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics on served addr: %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
