package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability HTTP surface for one process:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot of the same registry
//	/debug/vars     expvar (Go runtime memstats, cmdline)
//	/debug/pprof/   net/http/pprof index, profile, heap, trace, ...
//
// It is mounted on a private mux so importing this package never touches
// http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoints on addr in a background
// goroutine and returns the server plus the bound address (useful with
// ":0"). Callers shut it down with srv.Close or srv.Shutdown.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(lis) }()
	return srv, lis.Addr().String(), nil
}
