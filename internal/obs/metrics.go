package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry. Metric handles are resolved
// once (get-or-create by full name, which may carry a Prometheus-style
// {label="value"} suffix) and then updated lock-free on the hot path. A nil
// *Registry resolves nil handles, and every handle method is a no-op on a
// nil receiver, so instrumented code pays nothing when metrics are off.
type Registry struct {
	mu     sync.Mutex
	byName map[string]any
	order  []string
	help   map[string]string // help text per metric family (name sans labels)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any), help: make(map[string]string)}
}

// familyOf strips a {label="value"} suffix, returning the metric family name
// used for HELP/TYPE grouping in the Prometheus exposition.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (atomic via CAS). No-op on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations at or below its upper bound, plus an
// implicit +Inf bucket).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    Gauge          // reuses the CAS float accumulator
	count  atomic.Int64
}

// DefBuckets are the default latency buckets in seconds, spanning
// microsecond kernels to multi-minute distributed levels.
var DefBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1, 5, 30, 120,
}

// Observe records one sample. No-op on a nil receiver; allocation-free
// otherwise (binary search over the fixed bounds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Counter returns (creating on first use) the counter with the given full
// name. help is recorded for the metric family on first registration. A nil
// registry returns a nil handle. Registering the same name as a different
// metric kind panics: that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return c
	}
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// Gauge returns (creating on first use) the gauge with the given full name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return g
	}
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// full name. bounds must be sorted ascending; nil selects DefBuckets.
// Bounds are fixed at first registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return h
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.register(name, help, h)
	return h
}

// register stores a new metric under r.mu.
func (r *Registry) register(name, help string, m any) {
	r.byName[name] = m
	r.order = append(r.order, name)
	fam := familyOf(name)
	if _, ok := r.help[fam]; !ok && help != "" {
		r.help[fam] = help
	}
}

// snapshotEntry pairs a metric with its name for the exporters.
type snapshotEntry struct {
	name string
	m    any
}

// snapshot returns all metrics sorted by name (family grouping falls out of
// the lexicographic order since labels sort after the family prefix).
func (r *Registry) snapshot() ([]snapshotEntry, map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]snapshotEntry, 0, len(names))
	for _, n := range names {
		out = append(out, snapshotEntry{name: n, m: r.byName[n]})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	return out, help
}
