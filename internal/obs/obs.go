// Package obs is SliceLine's zero-dependency observability layer: spans
// (package-level tracing of runs, lattice levels, evaluation blocks, and
// worker RPCs), a metrics registry (counters, gauges, histograms with
// Prometheus-text and JSON exporters), and an HTTP surface bundling the
// metric endpoints with expvar and net/http/pprof.
//
// The layer is designed so that switched-off observability costs nothing on
// the hot path: a nil Tracer produces nil *Span values, and every Span,
// Counter, Gauge and Histogram method is a no-op on a nil receiver without
// allocating. Instrumented code therefore never branches on "is tracing on"
// — it unconditionally calls methods on possibly-nil handles resolved once
// at setup time.
//
// Spans flow through contexts: the enumeration loop of internal/core places
// its per-level evaluation span into the context it hands to external
// evaluators, and the distributed runtime of internal/dist parents its
// per-RPC spans under whatever span the context carries. Callers plug in
// their own Tracer implementation (receiving every finished span via Finish)
// or use JSONTracer, which collects spans for a JSON dump.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer receives spans. StartSpan begins a root span; Finish is invoked
// exactly once per span when it ends (including child spans, which reach the
// tracer of their root ancestor). Implementations must be safe for
// concurrent use: the distributed runtime finishes RPC spans from many
// goroutines.
type Tracer interface {
	StartSpan(name string) *Span
	Finish(s *Span)
}

// spanIDs issues process-unique span identifiers.
var spanIDs atomic.Uint64

// Span is one timed operation with typed attributes and point events. The
// zero-cost off switch is the nil *Span: every method is a no-op on a nil
// receiver, so instrumented code holds possibly-nil spans and calls through
// unconditionally.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	Dur    time.Duration

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	tr     Tracer
	ended  bool
}

// Attr is one typed span attribute.
type Attr struct {
	Key string
	// Kind selects which of the value fields is meaningful.
	Kind AttrKind
	Int  int64
	Flt  float64
	Str  string
}

// AttrKind discriminates attribute values.
type AttrKind int

// Attribute kinds.
const (
	KindInt AttrKind = iota
	KindFloat
	KindStr
)

// Event is a point-in-time annotation on a span, offset from the span start.
type Event struct {
	Name string
	At   time.Duration
}

// NewSpan constructs a started span owned by tr. Custom Tracer
// implementations call it from StartSpan; Finish receives the same pointer
// back when the span ends.
func NewSpan(tr Tracer, name string) *Span {
	return &Span{ID: spanIDs.Add(1), Name: name, Start: time.Now(), tr: tr}
}

// Start begins a root span on tr, or returns nil when tr is nil. It is the
// entry point instrumented code uses so the nil-tracer path never allocates.
func Start(tr Tracer, name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.StartSpan(name)
}

// Child begins a sub-span. On a nil receiver it returns nil, keeping whole
// instrumented call trees free when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(s.tr, name)
	c.Parent = s.ID
	return c
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindInt, Int: v})
	s.mu.Unlock()
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindFloat, Flt: v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindStr, Str: v})
	s.mu.Unlock()
}

// SetBool attaches a boolean attribute (encoded as 0/1).
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	i := int64(0)
	if v {
		i = 1
	}
	s.SetInt(key, i)
}

// Event records a point event at the current offset into the span.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	at := time.Since(s.Start)
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, At: at})
	s.mu.Unlock()
}

// End stamps the duration and delivers the span to its tracer, once.
// Repeated Ends are ignored, so a deferred End composes with early Ends on
// success paths.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Dur = time.Since(s.Start)
	tr := s.tr
	s.mu.Unlock()
	if tr != nil {
		tr.Finish(s)
	}
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Events returns a copy of the span's events.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// AttrInt returns the last integer attribute with the given key, or def.
func (s *Span) AttrInt(key string, def int64) int64 {
	if s == nil {
		return def
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := def
	for _, a := range s.attrs {
		if a.Key == key && a.Kind == KindInt {
			out = a.Int
		}
	}
	return out
}

// ctxKey carries a span through a context.
type ctxKey struct{}

// ContextWith returns a context carrying s. A nil span returns ctx
// unchanged, so switched-off tracing adds no context allocation.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// JSONTracer collects finished spans in memory for a JSON dump — the
// implementation behind the binaries' -trace flags. It is bounded: beyond
// MaxSpans finished spans the oldest are kept and later ones dropped
// (Dropped reports how many), so a runaway enumeration cannot exhaust
// memory through its own telemetry.
type JSONTracer struct {
	mu      sync.Mutex
	spans   []*Span
	dropped int
	max     int
	t0      time.Time
}

// DefaultMaxSpans bounds a JSONTracer's retained spans.
const DefaultMaxSpans = 1 << 20

// NewJSONTracer returns an empty collecting tracer with the default bound.
func NewJSONTracer() *JSONTracer {
	return &JSONTracer{max: DefaultMaxSpans, t0: time.Now()}
}

// StartSpan implements Tracer.
func (t *JSONTracer) StartSpan(name string) *Span { return NewSpan(t, name) }

// Finish implements Tracer.
func (t *JSONTracer) Finish(s *Span) {
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns a snapshot of the finished spans in finish order.
func (t *JSONTracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Dropped reports how many spans were discarded after the bound was hit.
func (t *JSONTracer) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all collected spans.
func (t *JSONTracer) Reset() {
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// jsonSpan is the stable on-disk form of one span.
type jsonSpan struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Events  []jsonEvent    `json:"events,omitempty"`
}

type jsonEvent struct {
	Name string `json:"name"`
	AtUS int64  `json:"at_us"`
}

// exportSpan converts a span for JSON output; start times are relative to t0
// so dumps are comparable across runs.
func exportSpan(s *Span, t0 time.Time) jsonSpan {
	js := jsonSpan{
		ID:      s.ID,
		Parent:  s.Parent,
		Name:    s.Name,
		StartUS: s.Start.Sub(t0).Microseconds(),
		DurUS:   s.Dur.Microseconds(),
	}
	attrs := s.Attrs()
	if len(attrs) > 0 {
		js.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			switch a.Kind {
			case KindInt:
				js.Attrs[a.Key] = a.Int
			case KindFloat:
				js.Attrs[a.Key] = a.Flt
			case KindStr:
				js.Attrs[a.Key] = a.Str
			}
		}
	}
	for _, e := range s.Events() {
		js.Events = append(js.Events, jsonEvent{Name: e.Name, AtUS: e.At.Microseconds()})
	}
	return js
}

// WriteJSON dumps all collected spans as one JSON document, ordered by start
// time (ties by span ID) for a stable layout.
func (t *JSONTracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	t.mu.Lock()
	t0 := t.t0
	dropped := t.dropped
	t.mu.Unlock()
	doc := struct {
		SchemaVersion int        `json:"schema_version"`
		Dropped       int        `json:"dropped_spans,omitempty"`
		Spans         []jsonSpan `json:"spans"`
	}{SchemaVersion: 1, Dropped: dropped, Spans: make([]jsonSpan, 0, len(spans))}
	for _, s := range spans {
		doc.Spans = append(doc.Spans, exportSpan(s, t0))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
