package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metrics sort by full
// name, one # HELP/# TYPE pair per metric family. Histograms expose the
// usual cumulative _bucket{le=...}, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries, help := r.snapshot()
	seenFam := make(map[string]bool)
	for _, e := range entries {
		fam := familyOf(e.name)
		if !seenFam[fam] {
			seenFam[fam] = true
			if h := help[fam]; h != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, promType(e.m)); err != nil {
				return err
			}
		}
		if err := writePromMetric(w, e.name, e.m); err != nil {
			return err
		}
	}
	return nil
}

func promType(m any) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge:
		return "gauge"
	case *Histogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// withLabel appends one label to a full metric name that may already carry a
// {..} label suffix, producing suffix-form series names like
// name{worker="0",le="0.5"}.
func withLabel(name, key, val string) string {
	lbl := key + `="` + val + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + lbl + "}"
	}
	return name + "{" + lbl + "}"
}

// seriesName splits a full name into family and existing label suffix and
// re-joins with a series suffix (_bucket, _sum, _count) on the family.
func seriesName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func writePromMetric(w io.Writer, name string, m any) error {
	switch v := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", name, v.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %s\n", name, promFloat(v.Value()))
		return err
	case *Histogram:
		cum := int64(0)
		for i, b := range v.bounds {
			cum += v.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(seriesName(name, "_bucket"), "le", promFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += v.counts[len(v.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(seriesName(name, "_bucket"), "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name, "_sum"), promFloat(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, "_count"), v.Count())
		return err
	default:
		return fmt.Errorf("obs: unknown metric kind %T", m)
	}
}

// jsonHistogram is the JSON form of a histogram snapshot.
type jsonHistogram struct {
	Kind   string    `json:"kind"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // per-bucket (non-cumulative), +Inf last
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// WriteJSON renders the registry as one JSON object keyed by full metric
// name: counters as integers, gauges as floats, histograms as objects with
// bounds, per-bucket counts, sum and count. Key order is deterministic
// (sorted), matching the Prometheus exporter.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	entries, _ := r.snapshot()
	var b strings.Builder
	b.WriteString("{\n")
	for i, e := range entries {
		kb, _ := json.Marshal(e.name)
		b.WriteString("  ")
		b.Write(kb)
		b.WriteString(": ")
		switch v := e.m.(type) {
		case *Counter:
			b.WriteString(strconv.FormatInt(v.Value(), 10))
		case *Gauge:
			vb, _ := json.Marshal(v.Value())
			b.Write(vb)
		case *Histogram:
			counts := make([]int64, len(v.counts))
			for j := range v.counts {
				counts[j] = v.counts[j].Load()
			}
			vb, err := json.Marshal(jsonHistogram{
				Kind: "histogram", Bounds: v.bounds, Counts: counts,
				Sum: v.Sum(), Count: v.Count(),
			})
			if err != nil {
				return err
			}
			b.Write(vb)
		}
		if i < len(entries)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
