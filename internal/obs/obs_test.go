package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewJSONTracer()
	sp := Start(tr, "run")
	if sp == nil {
		t.Fatal("Start on a live tracer returned nil")
	}
	sp.SetInt("n", 100)
	sp.SetFloat("alpha", 0.95)
	sp.SetStr("dataset", "adult")
	sp.SetBool("weighted", true)

	child := sp.Child("level")
	child.SetInt("level", 2)
	child.Event("pruned")
	child.End()
	sp.End()
	sp.End() // idempotent

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (child then parent)", len(spans))
	}
	if spans[0].Name != "level" || spans[1].Name != "run" {
		t.Fatalf("finish order %q, %q; want level, run", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent %d != root id %d", spans[0].Parent, spans[1].ID)
	}
	if got := spans[1].AttrInt("n", -1); got != 100 {
		t.Fatalf("attr n = %d, want 100", got)
	}
	if got := spans[1].AttrInt("weighted", -1); got != 1 {
		t.Fatalf("attr weighted = %d, want 1", got)
	}
	if evs := spans[0].Events(); len(evs) != 1 || evs[0].Name != "pruned" {
		t.Fatalf("child events = %v, want one 'pruned'", evs)
	}
}

func TestNilSpanAndTracerAreInert(t *testing.T) {
	sp := Start(nil, "run")
	if sp != nil {
		t.Fatal("Start(nil) must return a nil span")
	}
	// All of these must be no-ops, not panics.
	sp.SetInt("k", 1)
	sp.SetFloat("f", 1)
	sp.SetStr("s", "x")
	sp.SetBool("b", true)
	sp.Event("e")
	child := sp.Child("c")
	if child != nil {
		t.Fatal("nil span Child must be nil")
	}
	child.End()
	sp.End()
	if sp.Attrs() != nil || sp.Events() != nil {
		t.Fatal("nil span must have no attrs or events")
	}
	if got := sp.AttrInt("k", 7); got != 7 {
		t.Fatalf("nil span AttrInt = %d, want default 7", got)
	}
}

// TestNilObserverZeroAlloc is the allocation-free contract of the off
// switch: span, counter, gauge and histogram operations on nil handles — the
// exact calls the instrumented hot paths make — must not allocate at all.
func TestNilObserverZeroAlloc(t *testing.T) {
	var tr Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Start(tr, "eval")
		sp.SetInt("candidates", 512)
		sp.SetFloat("seconds", 0.25)
		sp.Event("hedge")
		child := sp.Child("rpc")
		child.End()
		sp.End()
		c.Add(512)
		c.Inc()
		g.Set(3)
		g.Add(-1)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("nil-observer path allocates %v per run, want 0", allocs)
	}
}

func TestContextCarriesSpan(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatal("empty context must carry no span")
	}
	if got := ContextWith(ctx, nil); got != ctx {
		t.Fatal("attaching a nil span must return the context unchanged")
	}
	tr := NewJSONTracer()
	sp := Start(tr, "run")
	ctx2 := ContextWith(ctx, sp)
	if got := FromContext(ctx2); got != sp {
		t.Fatal("context round-trip lost the span")
	}
}

func TestJSONTracerBound(t *testing.T) {
	tr := NewJSONTracer()
	tr.max = 2
	for i := 0; i < 5; i++ {
		Start(tr, "s").End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("bounded tracer kept %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset must clear spans and the drop counter")
	}
}

func TestJSONTracerWriteJSON(t *testing.T) {
	tr := NewJSONTracer()
	sp := Start(tr, "run")
	sp.SetInt("n", 42)
	child := sp.Child("level")
	child.Event("checkpoint")
	time.Sleep(time.Millisecond)
	child.End()
	sp.End()

	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Spans         []struct {
			ID     uint64         `json:"id"`
			Parent uint64         `json:"parent"`
			Name   string         `json:"name"`
			DurUS  int64          `json:"dur_us"`
			Attrs  map[string]any `json:"attrs"`
			Events []struct {
				Name string `json:"name"`
			} `json:"events"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.SchemaVersion != 1 {
		t.Fatalf("schema_version = %d, want 1", doc.SchemaVersion)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("dump has %d spans, want 2", len(doc.Spans))
	}
	// Start-ordered: root first even though it finished last.
	if doc.Spans[0].Name != "run" {
		t.Fatalf("first span %q, want run (start order)", doc.Spans[0].Name)
	}
	if doc.Spans[1].Parent != doc.Spans[0].ID {
		t.Fatal("child span lost its parent link in the dump")
	}
	if got, ok := doc.Spans[0].Attrs["n"].(float64); !ok || got != 42 {
		t.Fatalf("attr n = %v, want 42", doc.Spans[0].Attrs["n"])
	}
	if len(doc.Spans[1].Events) != 1 || doc.Spans[1].Events[0].Name != "checkpoint" {
		t.Fatalf("child events in dump = %v", doc.Spans[1].Events)
	}
	if doc.Spans[1].DurUS < 900 {
		t.Fatalf("child duration %dus, want >= ~1ms", doc.Spans[1].DurUS)
	}
}

func TestRegistrySemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.")
	c.Add(3)
	if again := r.Counter("requests_total", "ignored"); again != c {
		t.Fatal("Counter must be get-or-create by name")
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}

	g := r.Gauge("queue_depth", "Current depth.")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}

	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got != 10.55 {
		t.Fatalf("histogram sum = %v, want 10.55", got)
	}
	if h.counts[0].Load() != 1 || h.counts[1].Load() != 1 || h.counts[2].Load() != 1 {
		t.Fatal("observations landed in the wrong buckets")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("requests_total", "wrong kind")
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must resolve nil handles")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "{}" {
		t.Fatalf("nil registry JSON = %q, want {}", b.String())
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" bucket, Prometheus semantics
	if h.counts[0].Load() != 1 {
		t.Fatal("observation equal to a bound must land in that bucket")
	}
}
