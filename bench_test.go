// Benchmarks regenerating each table and figure of the paper's evaluation
// at single-core-friendly scales. Run with:
//
//	go test -bench=. -benchmem
//
// The slbench command runs the same experiments with full reporting; the
// benchmarks here measure the end-to-end enumeration cost per artifact.
package sliceline_test

import (
	"fmt"
	"sync"
	"testing"

	"sliceline"
	"sliceline/datasets"
	"sliceline/internal/dist"
	"sliceline/internal/frame"
)

// cached dataset generation: benchmarks share inputs so iteration timing
// measures enumeration, not data synthesis.
var (
	genOnce  sync.Once
	adultG   *datasets.Generated
	salaries *datasets.Generated
	censusG  *datasets.Generated
	covtypeG *datasets.Generated
	kdd98G   *datasets.Generated
	criteoG  *datasets.Generated
)

func gen() {
	genOnce.Do(func() {
		adultG = truncateGen(datasets.Adult(1), 8000)
		s := datasets.Salaries(1)
		salaries = s.ReplicateCols(2).ReplicateRows(2)
		censusG = datasets.USCensus(6000, 1)
		covtypeG = datasets.Covtype(6000, 1)
		kdd98G = datasets.KDD98(1500, 1)
		criteoG = datasets.Criteo(30000, 1)
	})
}

func truncateGen(g *datasets.Generated, n int) *datasets.Generated {
	ds, _ := g.DS.Split(n)
	ds.Name = g.DS.Name
	return &datasets.Generated{DS: ds, Err: g.Err[:n], Task: g.Task}
}

func mustRun(b *testing.B, g *datasets.Generated, cfg sliceline.Config) *sliceline.Result {
	b.Helper()
	res, err := sliceline.Run(g.DS, g.Err, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Encode measures data preparation (the one-hot encoding of
// Algorithm 1 lines 1-5) per dataset — the dataset-characteristics baseline
// of Table 1.
func BenchmarkTable1Encode(b *testing.B) {
	gen()
	for _, g := range []*datasets.Generated{salaries, adultG, censusG, covtypeG, kdd98G} {
		b.Run(g.DS.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := frame.OneHot(g.DS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Pruning runs the five pruning-ablation configurations of
// Figure 3 on Salaries 2x2.
func BenchmarkFig3Pruning(b *testing.B) {
	gen()
	sigma := (salaries.DS.NumRows() + 99) / 100
	configs := []struct {
		name string
		cfg  sliceline.Config
	}{
		{"all-pruning", sliceline.Config{}},
		{"no-parents", sliceline.Config{DisableParentHandling: true}},
		{"no-parents-score", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true}},
		{"no-parents-score-size", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true}},
		{"no-pruning-dedup", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true, DisableDedup: true, MaxCandidatesPerLevel: 200_000}},
	}
	for _, c := range configs {
		c.cfg.Alpha = 0.95
		c.cfg.Sigma = sigma
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, salaries, c.cfg)
			}
		})
	}
}

// BenchmarkFig4Adult enumerates Adult with unbounded level (Figure 4a).
func BenchmarkFig4Adult(b *testing.B) {
	gen()
	for i := 0; i < b.N; i++ {
		mustRun(b, adultG, sliceline.Config{Alpha: 0.95})
	}
}

// BenchmarkFig4Datasets enumerates the correlated/wide datasets with the
// paper's level caps (Figure 4b).
func BenchmarkFig4Datasets(b *testing.B) {
	gen()
	runs := []struct {
		g   *datasets.Generated
		cap int
	}{
		{kdd98G, 2},
		{censusG, 3},
		{covtypeG, 3},
	}
	for _, r := range runs {
		b.Run(r.g.DS.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, r.g, sliceline.Config{Alpha: 0.95, MaxLevel: r.cap})
			}
		})
	}
}

// BenchmarkFig5Alpha sweeps the weight parameter alpha (Figure 5).
func BenchmarkFig5Alpha(b *testing.B) {
	gen()
	for _, alpha := range []float64{0.36, 0.84, 0.96, 0.99} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, adultG, sliceline.Config{K: 10, Alpha: alpha, MaxLevel: 3})
			}
		})
	}
}

// BenchmarkSigmaSweep sweeps the minimum support constraint (Section 5.3).
func BenchmarkSigmaSweep(b *testing.B) {
	gen()
	n := adultG.DS.NumRows()
	for _, frac := range []float64{1e-3, 1e-2, 1e-1} {
		sigma := int(frac * float64(n))
		if sigma < 1 {
			sigma = 1
		}
		b.Run(fmt.Sprintf("sigma=%.0e", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, adultG, sliceline.Config{K: 10, Alpha: 0.95, Sigma: sigma, MaxLevel: 3})
			}
		})
	}
}

// BenchmarkFig6EndToEnd measures end-to-end runtime per dataset (Figure 6a).
func BenchmarkFig6EndToEnd(b *testing.B) {
	gen()
	runs := []struct {
		g   *datasets.Generated
		cap int
	}{
		{salaries, 3},
		{adultG, 3},
		{covtypeG, 3},
		{kdd98G, 2},
		{censusG, 3},
		{criteoG, 3},
	}
	for _, r := range runs {
		b.Run(r.g.DS.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, r.g, sliceline.Config{Alpha: 0.95, MaxLevel: r.cap})
			}
		})
	}
}

// BenchmarkFig6BlockSize sweeps the hybrid evaluation block size b
// (Figure 6b).
func BenchmarkFig6BlockSize(b *testing.B) {
	gen()
	for _, bs := range []int{1, 4, 16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("b=%d", bs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, adultG, sliceline.Config{Alpha: 0.95, MaxLevel: 3, BlockSize: bs})
			}
		})
	}
}

// BenchmarkFig7Rows scales USCensus row-wise (Figure 7a).
func BenchmarkFig7Rows(b *testing.B) {
	gen()
	base := datasets.USCensus(3000, 1)
	for _, f := range []int{1, 2, 4} {
		g := base.ReplicateRows(f)
		b.Run(fmt.Sprintf("x%d", f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, g, sliceline.Config{Alpha: 0.95, MaxLevel: 3})
			}
		})
	}
}

// BenchmarkFig7Strategies compares parallelization strategies (Figure 7b):
// MT-Ops, MT-PFor and Dist-PFor over in-process row-partitioned workers.
func BenchmarkFig7Strategies(b *testing.B) {
	gen()
	// One shared block size isolates orchestration costs (see fig7b).
	const blockSize = 256
	mkLocal := func(s dist.Strategy) sliceline.Config {
		ev, err := dist.NewLocal(s, blockSize)
		if err != nil {
			b.Fatal(err)
		}
		return sliceline.Config{Alpha: 0.95, MaxLevel: 3, Evaluator: ev}
	}
	b.Run("MT-Ops", func(b *testing.B) {
		cfg := mkLocal(dist.MTOps)
		for i := 0; i < b.N; i++ {
			mustRun(b, censusG, cfg)
		}
	})
	b.Run("MT-PFor", func(b *testing.B) {
		cfg := mkLocal(dist.MTPFor)
		for i := 0; i < b.N; i++ {
			mustRun(b, censusG, cfg)
		}
	})
	for _, nw := range []int{2, 4} {
		b.Run(fmt.Sprintf("Dist-PFor-%dw", nw), func(b *testing.B) {
			workers := make([]dist.Worker, nw)
			for i := range workers {
				workers[i] = &dist.InProcessWorker{}
			}
			cluster, err := dist.NewCluster(workers, blockSize)
			if err != nil {
				b.Fatal(err)
			}
			cfg := sliceline.Config{Alpha: 0.95, MaxLevel: 3, Evaluator: cluster}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustRun(b, censusG, cfg)
			}
		})
	}
}

// BenchmarkTable2Criteo enumerates the ultra-sparse Criteo stand-in through
// level 6 (Table 2).
func BenchmarkTable2Criteo(b *testing.B) {
	gen()
	for i := 0; i < b.N; i++ {
		mustRun(b, criteoG, sliceline.Config{Alpha: 0.95, MaxLevel: 6})
	}
}

// BenchmarkMLSystemsComparison contrasts the fused sparse kernel with dense
// materialized intermediates (Section 5.4's kernel-quality point).
func BenchmarkMLSystemsComparison(b *testing.B) {
	gen()
	b.Run("fused-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, adultG, sliceline.Config{Alpha: 0.95, MaxLevel: 3})
		}
	})
	b.Run("dense-intermediates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, adultG, sliceline.Config{Alpha: 0.95, MaxLevel: 3, DenseEval: true})
		}
	})
}
