package datasets

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/frame"
)

const sampleCSV = `city,tier,income,label
oslo,a,10.5,1
bergen,b,20.25,0
oslo,a,30,1
tromso,c,15.75,0
bergen,b,12,1
oslo,c,28.5,0
`

func TestLoadCSV(t *testing.T) {
	l, err := LoadCSV(strings.NewReader(sampleCSV), "label", 4)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if l.DS.NumRows() != 6 {
		t.Errorf("rows = %d, want 6", l.DS.NumRows())
	}
	if l.DS.NumFeatures() != 3 {
		t.Errorf("features = %d, want 3 (label must be excluded)", l.DS.NumFeatures())
	}
	if len(l.DS.Y) != 6 {
		t.Errorf("labels = %d, want 6", len(l.DS.Y))
	}
	if err := l.DS.Validate(); err != nil {
		t.Errorf("loaded dataset invalid: %v", err)
	}
	if l.Enc == nil || l.Enc.X == nil {
		t.Fatal("loader did not produce a one-hot encoding")
	}
}

func TestLoadCSVDrop(t *testing.T) {
	l, err := LoadCSV(strings.NewReader(sampleCSV), "label", 4, "income")
	if err != nil {
		t.Fatalf("LoadCSV with drop: %v", err)
	}
	if l.DS.NumFeatures() != 2 {
		t.Errorf("features = %d, want 2 after dropping income", l.DS.NumFeatures())
	}
	for _, f := range l.DS.Features {
		if f.Name == "income" {
			t.Error("dropped column leaked into the features")
		}
	}
}

func TestLoadCSVMalformedInputs(t *testing.T) {
	cases := []struct {
		name, csv, label string
	}{
		{"empty file", "", ""},
		{"header only", "a,b\n", ""},
		{"ragged row", "a,b\nx,1\ny\n", ""},
		{"extra field", "a,b\nx,1\ny,2,3\n", ""},
		{"missing label column", sampleCSV, "nope"},
		{"categorical label", sampleCSV, "city"},
		{"unbalanced quote", "a,b\n\"x,1\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadCSV(strings.NewReader(tc.csv), tc.label, 4); err == nil {
				t.Errorf("LoadCSV accepted %s", tc.name)
			}
		})
	}
}

// TestLoadCSVDeterministicSignature pins the loader's core guarantee: the
// same bytes load to the same encoding, measured by the exported core data
// signature (which is also what content-addresses server-side datasets).
func TestLoadCSVDeterministicSignature(t *testing.T) {
	sig := func(l *Loaded) uint64 {
		return core.DataSignature(l.Enc, l.DS.Y, nil)
	}
	first, err := LoadCSV(strings.NewReader(sampleCSV), "label", 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := LoadCSV(strings.NewReader(sampleCSV), "label", 4)
		if err != nil {
			t.Fatal(err)
		}
		if sig(again) != sig(first) {
			t.Fatalf("load %d produced signature %x, first load %x", i, sig(again), sig(first))
		}
	}
	// A semantically different input must not collide.
	mutated := strings.Replace(sampleCSV, "10.5", "11.5", 1)
	other, err := LoadCSV(strings.NewReader(mutated), "label", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sig(other) == sig(first) {
		t.Error("mutated csv loads to the same signature")
	}
}

// TestLoadCSVFileRoundTrip writes a frame out through the CSV codec, reloads
// it from disk, and verifies the encoding signature is stable across the
// round trip.
func TestLoadCSVFileRoundTrip(t *testing.T) {
	f, err := frame.ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frame.WriteCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	direct, err := LoadCSV(strings.NewReader(sampleCSV), "label", 4)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadCSVFile(path, "label", 4)
	if err != nil {
		t.Fatal(err)
	}
	got := core.DataSignature(reloaded.Enc, reloaded.DS.Y, nil)
	want := core.DataSignature(direct.Enc, direct.DS.Y, nil)
	if got != want {
		t.Fatalf("round-trip signature %x, direct load %x", got, want)
	}

	if _, err := LoadCSVFile(filepath.Join(t.TempDir(), "missing.csv"), "", 4); err == nil {
		t.Error("LoadCSVFile accepted a missing file")
	}
}
