// Package datasets exposes the deterministic synthetic datasets used by the
// examples and benchmarks: stand-ins for the paper's evaluation datasets
// (Table 1) with matching shapes, planted problematic slices, correlated
// column groups, and heavy-tailed category frequencies. See DESIGN.md for
// the substitution rationale.
package datasets

import "sliceline/internal/datagen"

// Generated bundles a synthetic dataset with labels (DS.Y) for model
// training and a pre-materialized error vector Err for enumeration-only
// workloads.
type Generated = datagen.Generated

// Salaries returns the Salaries stand-in: 397 rows, 5 features, regression.
func Salaries(seed int64) *Generated { return datagen.Salaries(seed) }

// Adult returns the UCI-Adult stand-in: 32,561 rows, 14 features (l = 162),
// 2-class.
func Adult(seed int64) *Generated { return datagen.Adult(seed) }

// Covtype returns the Covtype stand-in with n rows (0 = default): 54
// features (l = 188) with correlated binary indicator groups, 7-class.
func Covtype(n int, seed int64) *Generated { return datagen.Covtype(n, seed) }

// KDD98 returns the KDD'98 stand-in with n rows (0 = default): 469 features
// (l = 8,378), regression.
func KDD98(n int, seed int64) *Generated { return datagen.KDD98(n, seed) }

// USCensus returns the US Census 1990 stand-in with n rows (0 = default):
// 68 features (l = 378) with correlated column groups, 4-class.
func USCensus(n int, seed int64) *Generated { return datagen.USCensus(n, seed) }

// Criteo returns the CriteoD21 stand-in with n rows (0 = default): 39
// features one-hot encoding to roughly one million ultra-sparse columns,
// 2-class.
func Criteo(n int, seed int64) *Generated { return datagen.Criteo(n, seed) }
