package datasets

import (
	"fmt"
	"io"
	"os"

	"sliceline/internal/frame"
)

// Loaded bundles a CSV-loaded dataset with its one-hot encoding, computed
// exactly once at load time — the same invariant the slserve dataset
// registry maintains for uploads.
type Loaded struct {
	DS  *frame.Dataset
	Enc *frame.Encoding
}

// LoadCSV reads a CSV stream (header row required) into an encoded dataset:
// categorical columns are recoded, numeric columns are binned into nBins
// equi-width bins (<= 0 selects 10), the named label column (optional, "")
// is extracted as DS.Y, and columns in drop are excluded from the features.
// Loading is deterministic: identical bytes always produce an identical
// encoding and therefore an identical core data signature.
func LoadCSV(r io.Reader, label string, nBins int, drop ...string) (*Loaded, error) {
	if nBins <= 0 {
		nBins = 10
	}
	f, err := frame.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	ds, err := frame.FromFrame(f, label, nBins, drop...)
	if err != nil {
		return nil, err
	}
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("datasets: csv has no data rows")
	}
	if ds.NumFeatures() == 0 {
		return nil, fmt.Errorf("datasets: csv has no feature columns")
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	return &Loaded{DS: ds, Enc: enc}, nil
}

// LoadCSVFile is LoadCSV over a file path.
func LoadCSVFile(path, label string, nBins int, drop ...string) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datasets: %w", err)
	}
	defer f.Close()
	l, err := LoadCSV(f, label, nBins, drop...)
	if err != nil {
		return nil, fmt.Errorf("datasets: loading %s: %w", path, err)
	}
	return l, nil
}
