package datasets

import "testing"

func TestWrappersProduceValidDatasets(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *Generated
	}{
		{"Salaries", func() *Generated { return Salaries(1) }},
		{"Covtype", func() *Generated { return Covtype(500, 1) }},
		{"KDD98", func() *Generated { return KDD98(300, 1) }},
		{"USCensus", func() *Generated { return USCensus(500, 1) }},
		{"Criteo", func() *Generated { return Criteo(500, 1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.gen()
			if err := g.DS.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(g.Err) != g.DS.NumRows() {
				t.Fatalf("error vector %d vs %d rows", len(g.Err), g.DS.NumRows())
			}
		})
	}
}

func TestAdultWrapper(t *testing.T) {
	g := Adult(1)
	if g.DS.NumRows() != 32561 || g.DS.OneHotWidth() != 162 {
		t.Fatalf("Adult shape %d/%d", g.DS.NumRows(), g.DS.OneHotWidth())
	}
}
