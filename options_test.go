package sliceline_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"sliceline"
)

// optDataset builds a small deterministic dataset through the public API.
func optDataset(t *testing.T) (*sliceline.Dataset, []float64) {
	t.Helper()
	csv := strings.NewReader(
		"color,shape,y\n" +
			strings.Repeat("red,circle,1\nred,square,0\nblue,circle,0\nblue,square,1\ngreen,circle,1\n", 40))
	ds, err := sliceline.DatasetFromCSV(csv, "y", 4)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := sliceline.TrainAndScore(ds, sliceline.TaskClassification)
	if err != nil {
		t.Fatal(err)
	}
	return ds, e
}

// TestRunContextMatchesRun: the context-first entry point with options must
// produce the same result as the struct-only form.
func TestRunContextMatchesRun(t *testing.T) {
	ds, e := optDataset(t)
	cfg := sliceline.Config{K: 3, Sigma: 5, Alpha: 0.9}
	want, err := sliceline.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sliceline.RunContext(context.Background(), ds, e, sliceline.Config{K: 3, Sigma: 5, Alpha: 0.9},
		sliceline.WithMaxLevel(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TopK) != len(want.TopK) {
		t.Fatalf("top-K size %d vs %d", len(got.TopK), len(want.TopK))
	}
	for i := range want.TopK {
		if got.TopK[i].Score != want.TopK[i].Score || got.TopK[i].Size != want.TopK[i].Size {
			t.Fatalf("slice %d differs between Run and RunContext", i)
		}
	}
}

// TestRunContextCancellation: a pre-cancelled context must abort the run.
func TestRunContextCancellation(t *testing.T) {
	ds, e := optDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sliceline.RunContext(ctx, ds, e, sliceline.Config{K: 3, Sigma: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestOptionsWireObservability: WithTracer and WithMetrics must thread the
// observers through to the enumeration.
func TestOptionsWireObservability(t *testing.T) {
	ds, e := optDataset(t)
	tr := sliceline.NewJSONTracer()
	reg := sliceline.NewMetrics()
	res, err := sliceline.RunContext(context.Background(), ds, e, sliceline.Config{K: 3, Sigma: 5},
		sliceline.WithTracer(tr), sliceline.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	var sawRun, sawLevel bool
	for _, sp := range tr.Spans() {
		switch sp.Name {
		case "core.run":
			sawRun = true
		case "core.level":
			sawLevel = true
		}
	}
	if !sawRun || !sawLevel {
		t.Fatalf("tracer missing run/level spans (run=%v level=%v)", sawRun, sawLevel)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sl_core_runs_total 1") {
		t.Fatalf("metrics registry not wired:\n%s", b.String())
	}
	_ = res
}

// TestWithResume: checkpoint options must round-trip through a resumed run.
func TestWithResume(t *testing.T) {
	ds, e := optDataset(t)
	path := t.TempDir() + "/run.ck"
	first, err := sliceline.RunContext(context.Background(), ds, e, sliceline.Config{K: 3, Sigma: 5},
		sliceline.WithCheckpoint(path))
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := sliceline.RunContext(context.Background(), ds, e, sliceline.Config{K: 3, Sigma: 5},
		sliceline.WithResume(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.TopK) != len(first.TopK) {
		t.Fatalf("resumed top-K size %d vs %d", len(resumed.TopK), len(first.TopK))
	}
	for i := range first.TopK {
		if resumed.TopK[i].Score != first.TopK[i].Score {
			t.Fatalf("resumed slice %d differs", i)
		}
	}
}

// TestPublicSentinels: the re-exported sentinels must match what Run returns.
func TestPublicSentinels(t *testing.T) {
	ds, e := optDataset(t)
	if _, err := sliceline.Run(ds, e[:3], sliceline.Config{}); !errors.Is(err, sliceline.ErrBadErrorVector) {
		t.Fatalf("got %v, want ErrBadErrorVector", err)
	}
	if _, err := sliceline.Run(ds, e, sliceline.Config{Alpha: math.NaN()}); !errors.Is(err, sliceline.ErrBadAlpha) {
		t.Fatalf("got %v, want ErrBadAlpha", err)
	}
	if err := (sliceline.Config{K: 2, Alpha: 0.5}).Validate(); err != nil {
		t.Fatalf("Validate on a valid config: %v", err)
	}
}
