package sliceline

import (
	"context"

	"sliceline/internal/core"
	"sliceline/internal/obs"
)

// Context-first API. RunContext and RunWeightedContext are the preferred
// entry points for new code: they take a context for cancellation and
// deadline propagation (honored between lattice levels and inside external
// evaluators) and accept functional options layered over the Config struct.
// The plain Run/RunWeighted remain supported and delegate here with
// context.Background().

// Option adjusts a Config. Options are applied in order after the struct
// fields, so an option wins over the corresponding field when both are set.
type Option func(*Config)

// WithEvaluator delegates slice evaluation, e.g. to a distributed cluster.
func WithEvaluator(e ExternalEvaluator) Option {
	return func(c *Config) { c.Evaluator = e }
}

// WithTracer streams spans for the run, every lattice level, every
// evaluation call, and (through evaluators that support it) every worker RPC
// to t. Use NewJSONTracer to collect spans for a JSON dump.
func WithTracer(t Tracer) Option {
	return func(c *Config) { c.Tracer = t }
}

// WithMetrics records enumeration counters, gauges and latency histograms
// into m. Use NewMetrics to create a registry and its WritePrometheus /
// WriteJSON methods (or obs.Handler via the binaries) to export it.
func WithMetrics(m *Metrics) Option {
	return func(c *Config) { c.Metrics = m }
}

// WithCheckpoint persists enumeration state to path after every completed
// lattice level.
func WithCheckpoint(path string) Option {
	return func(c *Config) { c.CheckpointPath = path }
}

// WithResume persists enumeration state to path and, if the file already
// holds a compatible checkpoint, resumes from its last completed level.
func WithResume(path string) Option {
	return func(c *Config) { c.CheckpointPath = path; c.Resume = true }
}

// WithMaxLevel caps the lattice depth.
func WithMaxLevel(l int) Option {
	return func(c *Config) { c.MaxLevel = l }
}

// WithOnLevel registers a per-level progress callback.
func WithOnLevel(fn func(LevelStats)) Option {
	return func(c *Config) { c.OnLevel = fn }
}

func applyOptions(cfg Config, opts []Option) Config {
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// RunContext executes the SliceLine enumeration with a caller-supplied
// context. Cancellation is honored between lattice levels and propagated
// into external evaluators, so a cancelled run aborts in-flight distributed
// work instead of waiting for the level to finish.
func RunContext(ctx context.Context, ds *Dataset, e []float64, cfg Config, opts ...Option) (*Result, error) {
	return core.RunContext(ctx, ds, e, applyOptions(cfg, opts))
}

// RunWeightedContext is RunContext with per-row weights.
func RunWeightedContext(ctx context.Context, ds *Dataset, e, w []float64, cfg Config, opts ...Option) (*Result, error) {
	return core.RunWeightedContext(ctx, ds, e, w, applyOptions(cfg, opts))
}

// Observability types, re-exported so callers can implement hooks against
// the public package without importing internal paths.
type (
	// Tracer receives spans; implement it to bridge SliceLine tracing into
	// your own telemetry, or use NewJSONTracer for a collecting tracer.
	Tracer = obs.Tracer
	// Span is one timed operation with typed attributes and events. All
	// methods are no-ops on a nil *Span, so custom Tracer implementations
	// can selectively drop spans at zero cost.
	Span = obs.Span
	// JSONTracer collects finished spans in memory and dumps them as JSON.
	JSONTracer = obs.JSONTracer
	// Metrics is a registry of counters, gauges and histograms with
	// Prometheus-text and JSON exporters.
	Metrics = obs.Registry

	// ExternalEvaluator delegates candidate evaluation (see Config.Evaluator).
	ExternalEvaluator = core.ExternalEvaluator
)

// NewJSONTracer returns a collecting tracer whose WriteJSON emits the span
// dump the binaries' -trace flags produce.
func NewJSONTracer() *JSONTracer { return obs.NewJSONTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewSpan constructs a started span owned by tr; custom Tracer
// implementations call it from their StartSpan method.
func NewSpan(tr Tracer, name string) *Span { return obs.NewSpan(tr, name) }

// ResultSchemaVersion is the schema_version of the JSON documents written by
// Result.MarshalJSON (and the `sliceline -json` flag).
const ResultSchemaVersion = core.ResultSchemaVersion

// Typed validation sentinels, matchable with errors.Is on any error returned
// by Run and its variants.
var (
	ErrBadAlpha          = core.ErrBadAlpha
	ErrEmptyDataset      = core.ErrEmptyDataset
	ErrNoFeatures        = core.ErrNoFeatures
	ErrBadErrorVector    = core.ErrBadErrorVector
	ErrBadWeight         = core.ErrBadWeight
	ErrWeightedEvaluator = core.ErrWeightedEvaluator
)
