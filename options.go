package sliceline

import (
	"context"
	"fmt"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/obs"
)

// Context-first API. RunContext is the single preferred entry point for new
// code: it takes a context for cancellation and deadline propagation
// (honored between lattice levels and inside external evaluators) and
// accepts functional options layered over the Config struct — including
// WithWeights, which replaces the separate weighted entry points. The plain
// Run/RunWeighted/RunWeightedContext remain supported as thin deprecated
// wrappers that delegate here.

// runSettings collects everything an invocation needs beyond the dataset and
// error vector: the configuration plus per-call inputs (row weights) that
// used to require dedicated entry points.
type runSettings struct {
	cfg     Config
	weights []float64
}

// Option adjusts one run's settings. Options are applied in order after the
// Config struct fields, so an option wins over the corresponding field when
// both are set.
type Option func(*runSettings)

// WithWeights attaches per-row weights to the run: row i counts as w[i]
// identical rows in every size and error aggregate, so deduplicated datasets
// with multiplicities produce exactly the same top-K as their expanded form.
// Zero weights exclude rows entirely (the mechanism behind windowed runs);
// the total weight must be positive. Weights cannot be combined with
// WithEvaluator.
func WithWeights(w []float64) Option {
	return func(rs *runSettings) { rs.weights = w }
}

// WithBudget bounds the enumeration wall clock (anytime mode): the run stops
// before starting any lattice level once d has elapsed and reports the
// optimality gap it can still certify in Result.Gap. Combine with
// WithOnSnapshot to stream the improving top-K. Zero or negative d disables
// the budget.
func WithBudget(d time.Duration) Option {
	return func(rs *runSettings) {
		if d < 0 {
			d = 0
		}
		rs.cfg.Budget = d
	}
}

// WithSignificance sets the false-discovery-rate level in (0, 1) used to
// mark result slices Significant from their Benjamini–Hochberg q-values.
// The default is 0.05.
func WithSignificance(level float64) Option {
	return func(rs *runSettings) { rs.cfg.Significance = level }
}

// WithOnSnapshot registers an anytime progress callback, invoked after every
// completed lattice level with the current decoded top-K and certified
// optimality gap. It runs synchronously on the enumeration goroutine.
func WithOnSnapshot(fn func(Snapshot)) Option {
	return func(rs *runSettings) { rs.cfg.OnSnapshot = fn }
}

// WithEvaluator delegates slice evaluation, e.g. to a distributed cluster.
func WithEvaluator(e ExternalEvaluator) Option {
	return func(rs *runSettings) { rs.cfg.Evaluator = e }
}

// WithTracer streams spans for the run, every lattice level, every
// evaluation call, and (through evaluators that support it) every worker RPC
// to t. Use NewJSONTracer to collect spans for a JSON dump.
func WithTracer(t Tracer) Option {
	return func(rs *runSettings) { rs.cfg.Tracer = t }
}

// WithMetrics records enumeration counters, gauges and latency histograms
// into m. Use NewMetrics to create a registry and its WritePrometheus /
// WriteJSON methods (or obs.Handler via the binaries) to export it.
func WithMetrics(m *Metrics) Option {
	return func(rs *runSettings) { rs.cfg.Metrics = m }
}

// WithCheckpoint persists enumeration state to path after every completed
// lattice level.
func WithCheckpoint(path string) Option {
	return func(rs *runSettings) { rs.cfg.CheckpointPath = path }
}

// WithResume persists enumeration state to path and, if the file already
// holds a compatible checkpoint, resumes from its last completed level.
func WithResume(path string) Option {
	return func(rs *runSettings) { rs.cfg.CheckpointPath = path; rs.cfg.Resume = true }
}

// WithMaxLevel caps the lattice depth.
func WithMaxLevel(l int) Option {
	return func(rs *runSettings) { rs.cfg.MaxLevel = l }
}

// WithOnLevel registers a per-level progress callback.
func WithOnLevel(fn func(LevelStats)) Option {
	return func(rs *runSettings) { rs.cfg.OnLevel = fn }
}

func applySettings(cfg Config, opts []Option) runSettings {
	rs := runSettings{cfg: cfg}
	for _, o := range opts {
		if o != nil {
			o(&rs)
		}
	}
	return rs
}

// RunContext executes the SliceLine enumeration with a caller-supplied
// context. Cancellation is honored between lattice levels and propagated
// into external evaluators, so a cancelled run aborts in-flight distributed
// work instead of waiting for the level to finish. Row weights, anytime
// budgets and every other per-run input are supplied via options.
func RunContext(ctx context.Context, ds *Dataset, e []float64, cfg Config, opts ...Option) (*Result, error) {
	rs := applySettings(cfg, opts)
	if rs.weights != nil {
		return core.RunWeightedContext(ctx, ds, e, rs.weights, rs.cfg)
	}
	return core.RunContext(ctx, ds, e, rs.cfg)
}

// RunWeightedContext is RunContext with per-row weights.
//
// Deprecated: use RunContext with WithWeights(w).
func RunWeightedContext(ctx context.Context, ds *Dataset, e, w []float64, cfg Config, opts ...Option) (*Result, error) {
	return RunContext(ctx, ds, e, cfg, append([]Option{WithWeights(w)}, opts...)...)
}

// RunDiffContext finds the top slices of model-behavior change between two
// error vectors over the same rows — slices where the new model regressed
// (Slice.DiffSign = +1) and where it improved (DiffSign = -1) — by running
// the weighted enumeration over each rectified error delta. Weights and
// external evaluators are not supported for diff runs.
func RunDiffContext(ctx context.Context, ds *Dataset, eBase, eNew []float64, cfg Config, opts ...Option) (*Result, error) {
	rs := applySettings(cfg, opts)
	if rs.weights != nil {
		return nil, fmt.Errorf("sliceline: diff runs do not accept WithWeights: %w", ErrBadWeight)
	}
	return core.RunDiffContext(ctx, ds, eBase, eNew, rs.cfg)
}

// Observability types, re-exported so callers can implement hooks against
// the public package without importing internal paths.
type (
	// Tracer receives spans; implement it to bridge SliceLine tracing into
	// your own telemetry, or use NewJSONTracer for a collecting tracer.
	Tracer = obs.Tracer
	// Span is one timed operation with typed attributes and events. All
	// methods are no-ops on a nil *Span, so custom Tracer implementations
	// can selectively drop spans at zero cost.
	Span = obs.Span
	// JSONTracer collects finished spans in memory and dumps them as JSON.
	JSONTracer = obs.JSONTracer
	// Metrics is a registry of counters, gauges and histograms with
	// Prometheus-text and JSON exporters.
	Metrics = obs.Registry

	// ExternalEvaluator delegates candidate evaluation (see Config.Evaluator).
	ExternalEvaluator = core.ExternalEvaluator
)

// NewJSONTracer returns a collecting tracer whose WriteJSON emits the span
// dump the binaries' -trace flags produce.
func NewJSONTracer() *JSONTracer { return obs.NewJSONTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewSpan constructs a started span owned by tr; custom Tracer
// implementations call it from their StartSpan method.
func NewSpan(tr Tracer, name string) *Span { return obs.NewSpan(tr, name) }

// ResultSchemaVersion is the schema_version of the JSON documents written by
// Result.MarshalJSON (and the `sliceline -json` flag).
const ResultSchemaVersion = core.ResultSchemaVersion

// Typed validation sentinels, matchable with errors.Is on any error returned
// by Run and its variants.
var (
	ErrBadAlpha          = core.ErrBadAlpha
	ErrEmptyDataset      = core.ErrEmptyDataset
	ErrNoFeatures        = core.ErrNoFeatures
	ErrBadErrorVector    = core.ErrBadErrorVector
	ErrBadWeight         = core.ErrBadWeight
	ErrWeightedEvaluator = core.ErrWeightedEvaluator
	ErrBadBudget         = core.ErrBadBudget
	ErrBadSignificance   = core.ErrBadSignificance
)
