// Weighted: slice finding over deduplicated data with row multiplicities.
// Production logs often contain massive duplication; instead of expanding
// them, SliceLine accepts (unique rows, weights) and returns exactly the
// same top-K as the expanded data — demonstrated here by running both forms
// and comparing.
package main

import (
	"fmt"
	"log"
	"time"

	"sliceline"
	"sliceline/datasets"
)

func main() {
	base := datasets.Adult(1)
	ds, _ := base.DS.Split(6000)
	ds.Name = "Adult"
	e := base.Err[:6000]

	// Physically replicate every row 5 times (the expanded form) ...
	const k = 5
	expanded := ds.ReplicateRows(k)
	expandedErr := make([]float64, 0, len(e)*k)
	for r := 0; r < k; r++ {
		expandedErr = append(expandedErr, e...)
	}
	// ... versus the deduplicated form: unique rows with weight 5.
	w := make([]float64, len(e))
	for i := range w {
		w[i] = k
	}

	cfg := sliceline.Config{K: 3, Alpha: 0.95, MaxLevel: 3, Sigma: 300}

	start := time.Now()
	exp, err := sliceline.Run(expanded, expandedErr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	expTime := time.Since(start)

	start = time.Now()
	wt, err := sliceline.RunWeighted(ds, e, w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	wtTime := time.Since(start)

	fmt.Printf("expanded:     %7d rows, %v\n", expanded.NumRows(), expTime.Round(time.Millisecond))
	fmt.Printf("deduplicated: %7d rows, %v (%.1fx faster)\n",
		ds.NumRows(), wtTime.Round(time.Millisecond), float64(expTime)/float64(wtTime))

	fmt.Println("\ntop slices (expanded | weighted):")
	for i := range exp.TopK {
		fmt.Printf("#%d score %.4f size %d | score %.4f size %d  %s\n",
			i+1, exp.TopK[i].Score, exp.TopK[i].Size,
			wt.TopK[i].Score, wt.TopK[i].Size, predicates(wt.TopK[i]))
	}
}

func predicates(s sliceline.Slice) string {
	out := ""
	for i, p := range s.Predicates {
		if i > 0 {
			out += " AND "
		}
		out += p.String()
	}
	return out
}
