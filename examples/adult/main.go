// Adult: classification model debugging on the Adult-shaped dataset, the
// paper's running example. A multinomial logistic model is trained on the
// synthetic labels; the generator plants subgroups whose labels contradict
// the model's linear structure, so the classifier's mistakes concentrate
// exactly there — and SliceLine recovers those subgroups from the error
// vector alone.
package main

import (
	"fmt"
	"log"
	"time"

	"sliceline"
	"sliceline/datasets"
)

func main() {
	g := datasets.Adult(1)
	// Use a slice of the full dataset so the example runs in seconds.
	ds, _ := g.DS.Split(12000)
	ds.Name = "Adult"

	fmt.Printf("dataset: %d rows, %d features, %d one-hot columns\n",
		ds.NumRows(), ds.NumFeatures(), ds.OneHotWidth())

	errVec, desc, err := sliceline.TrainAndScore(ds, sliceline.TaskClassification)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", desc)

	start := time.Now()
	res, err := sliceline.Run(ds, errVec, sliceline.Config{K: 5, Alpha: 0.95, MaxLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sliceline: %d candidates over %d levels in %v\n",
		res.TotalCandidates(), len(res.Levels), time.Since(start).Round(time.Millisecond))

	fmt.Printf("\naverage model error: %.3f\n", res.AvgError)
	fmt.Println("top slices (where the model is worst):")
	for i, s := range res.TopK {
		fmt.Printf("#%d %s\n", i+1, s)
		fmt.Printf("    slice error rate %.3f vs overall %.3f (%.1fx)\n",
			s.AvgError, res.AvgError, s.AvgError/res.AvgError)
	}

	fmt.Println("\nper-level enumeration (pruning at work):")
	for _, ls := range res.Levels {
		fmt.Printf("  level %d: %6d candidates, %6d valid, %8d pruned\n",
			ls.Level, ls.Candidates, ls.Valid, ls.Pruned)
	}
}
