// Distributed: SliceLine with row-partitioned distributed slice evaluation.
// Worker servers are started on loopback TCP (in production they would run
// on separate nodes via cmd/slworker); the driver ships each worker a
// partition of the one-hot matrix, broadcasts the candidate slices of every
// lattice level, and aggregates the partial statistics — the paper's
// Dist-PFor strategy with real serialization over the wire.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"sliceline"
	"sliceline/datasets"
	"sliceline/internal/dist"
)

func main() {
	g := datasets.USCensus(8000, 1)
	fmt.Printf("dataset: %d rows, %d features, %d one-hot columns\n",
		g.DS.NumRows(), g.DS.NumFeatures(), g.DS.OneHotWidth())

	// Start four workers on ephemeral loopback ports.
	const nWorkers = 4
	var listeners []net.Listener
	var workers []dist.Worker
	for i := 0; i < nWorkers; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners = append(listeners, lis)
		go dist.Serve(lis) //nolint:errcheck // lifetime bound to listener
		w, err := dist.Dial(lis.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		workers = append(workers, w)
		fmt.Printf("worker %d listening on %s\n", i, lis.Addr())
	}
	defer func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}()

	cluster, err := dist.NewCluster(workers, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	cfg := sliceline.Config{K: 5, Alpha: 0.95, MaxLevel: 3, Evaluator: cluster}
	start := time.Now()
	res, err := sliceline.Run(g.DS, g.Err, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed run over %d workers: %d candidates in %v\n",
		nWorkers, res.TotalCandidates(), time.Since(start).Round(time.Millisecond))

	// Cross-check against the local evaluator: distribution must not change
	// results.
	local, err := sliceline.Run(g.DS, g.Err, sliceline.Config{K: 5, Alpha: 0.95, MaxLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop slices (distributed | local score):")
	for i := range res.TopK {
		fmt.Printf("#%d %s | %.4f\n", i+1, res.TopK[i], local.TopK[i].Score)
	}
}
