// Fairness: slice finding for bias instead of accuracy — one of the
// paper's proposed future-work directions (Section 7). The error vector
// passed to SliceLine is not a loss: it marks false positives, so the top
// slices are the subgroups with the most disproportionate false-positive
// rates (disparate mistreatment). Any non-negative per-row "badness" signal
// works the same way.
package main

import (
	"fmt"
	"log"

	"sliceline"
	"sliceline/datasets"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
)

func main() {
	g := datasets.Adult(7)
	ds, _ := g.DS.Split(12000)
	ds.Name = "Adult"

	enc, err := frame.OneHot(ds)
	if err != nil {
		log.Fatal(err)
	}
	model, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
	if err != nil {
		log.Fatal(err)
	}
	yhat := model.Predict(enc.X)

	// False-positive indicator: the model predicted the "favorable" class 1
	// although the true label is 0.
	fp := make([]float64, len(yhat))
	nFP := 0
	for i := range yhat {
		if yhat[i] == 1 && ds.Y[i] == 0 {
			fp[i] = 1
			nFP++
		}
	}
	fmt.Printf("model: overall false-positive fraction %.3f (%d rows)\n",
		float64(nFP)/float64(len(fp)), nFP)

	res, err := sliceline.Run(ds, fp, sliceline.Config{K: 5, Alpha: 0.9, MaxLevel: 3})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.TopK) == 0 {
		fmt.Println("no subgroup has a disproportionate false-positive rate")
		return
	}
	fmt.Println("\nsubgroups with disproportionate false-positive rates:")
	for i, s := range res.TopK {
		fmt.Printf("#%d %s\n", i+1, s)
		fmt.Printf("    FP rate %.3f vs overall %.3f (%.1fx, %d individuals)\n",
			s.AvgError, res.AvgError, s.AvgError/res.AvgError, s.Size)
	}
	// Quantify the worst subgroup against its complement with the standard
	// fairness criteria.
	worst := res.TopK[0]
	rows, err := sliceline.SliceRows(ds, worst)
	if err != nil {
		log.Fatal(err)
	}
	member := make([]bool, ds.NumRows())
	for _, r := range rows {
		member[r] = true
	}
	rest := make([]bool, ds.NumRows())
	for i := range rest {
		rest[i] = !member[i]
	}
	gIn, err := ml.BinaryGroupRates(ds.Y, yhat, member, 1)
	if err != nil {
		log.Fatal(err)
	}
	gOut, err := ml.BinaryGroupRates(ds.Y, yhat, rest, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairness criteria for the worst subgroup vs. the rest:\n")
	fmt.Printf("  selection rate: %.3f vs %.3f (demographic parity gap %.3f)\n",
		gIn.PositiveRate, gOut.PositiveRate, ml.DemographicParityGap(gIn, gOut))
	fmt.Printf("  TPR %.3f/%.3f, FPR %.3f/%.3f (equalized odds gap %.3f)\n",
		gIn.TPR, gOut.TPR, gIn.FPR, gOut.FPR, ml.EqualizedOddsGap(gIn, gOut))

	fmt.Println("\nEach subgroup is a candidate for fairness interventions:")
	fmt.Println("re-weighting, threshold adjustment, or targeted data collection.")
}
