// Quickstart: the smallest end-to-end SliceLine run. A tiny CSV is encoded,
// a model is trained on it, and the top problematic slices are printed.
package main

import (
	"fmt"
	"log"
	"strings"

	"sliceline"
)

// A toy loan dataset: the model will struggle on young applicants with low
// income because their label pattern contradicts the global trend.
const csvData = `age,income,approved
young,low,0
young,low,1
young,low,1
young,low,1
young,high,1
young,high,1
middle,low,0
middle,low,0
middle,high,1
middle,high,1
old,low,0
old,low,0
old,high,1
old,high,1
young,low,1
young,low,0
young,low,1
middle,high,1
old,high,1
old,low,0
`

func main() {
	// 1. Load and encode the data (categories are recoded to integer codes;
	//    numeric columns would be binned).
	ds, err := sliceline.DatasetFromCSV(strings.NewReader(csvData), "approved", 10)
	if err != nil {
		log.Fatal(err)
	}
	ds.Name = "loans"

	// 2. Train a classifier and derive the per-row error vector.
	errVec, desc, err := sliceline.TrainAndScore(ds, sliceline.TaskClassification)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", desc)

	// 3. Find the top slices where the model is worst. Sigma is tiny here
	//    because the dataset is tiny; production use keeps the default
	//    max(32, n/100).
	res, err := sliceline.Run(ds, errVec, sliceline.Config{K: 3, Sigma: 3, Alpha: 0.9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("average error %.3f over %d rows\n", res.AvgError, res.N)
	if len(res.TopK) == 0 {
		fmt.Println("no problematic slices found")
		return
	}
	for i, s := range res.TopK {
		fmt.Printf("#%d %s\n", i+1, s)
	}
}
