// Salaries: regression model debugging plus a miniature pruning ablation —
// the Figure 3 study of the paper. A ridge regression is fit on the
// Salaries-shaped dataset; SliceLine then finds the subgroups with the
// largest squared loss, first with all pruning enabled and then with the
// pruning techniques disabled one by one, printing the enumerated
// candidates per configuration.
package main

import (
	"fmt"
	"log"
	"time"

	"sliceline"
	"sliceline/datasets"
)

func main() {
	// The 2x2 replication (rows and columns doubled) adds the correlated
	// columns that make pruning interesting, exactly as in the paper's
	// ablation study.
	g := datasets.Salaries(1).ReplicateCols(2).ReplicateRows(2)
	ds := g.DS
	fmt.Printf("dataset: %d rows, %d features (Salaries 2x2)\n", ds.NumRows(), ds.NumFeatures())

	errVec, desc, err := sliceline.TrainAndScore(ds, sliceline.TaskRegression)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", desc)

	sigma := (ds.NumRows() + 99) / 100
	res, err := sliceline.Run(ds, errVec, sliceline.Config{K: 4, Alpha: 0.95, Sigma: sigma})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop slices by squared loss:")
	for i, s := range res.TopK {
		fmt.Printf("#%d %s\n", i+1, s)
	}

	// With replicated (perfectly correlated) columns, the raw top-K is
	// dominated by copies of one subgroup; diversification keeps only
	// slices covering genuinely different rows.
	div, err := sliceline.Diversify(ds, res.TopK, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter diversification (max 50% row overlap):")
	for i, s := range div {
		fmt.Printf("#%d %s\n", i+1, s)
	}

	fmt.Println("\npruning ablation (candidates enumerated per configuration):")
	configs := []struct {
		name string
		cfg  sliceline.Config
	}{
		{"all pruning", sliceline.Config{}},
		{"no parent handling", sliceline.Config{DisableParentHandling: true}},
		{"+ no score pruning", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true}},
		{"+ no size pruning", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true}},
		{"+ no deduplication", sliceline.Config{DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true, DisableDedup: true, MaxCandidatesPerLevel: 200_000}},
	}
	for _, c := range configs {
		c.cfg.Alpha = 0.95
		c.cfg.Sigma = sigma
		start := time.Now()
		r, err := sliceline.Run(ds, errVec, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if r.Truncated {
			note = " (aborted: candidate budget exhausted — the paper's unpruned configs ran out of memory)"
		}
		fmt.Printf("  %-22s %8d candidates in %8v%s\n",
			c.name, r.TotalCandidates(), time.Since(start).Round(time.Millisecond), note)
	}
}
