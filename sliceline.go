// Package sliceline is a Go implementation of SliceLine (Sagadeeva & Boehm,
// SIGMOD 2021): fast, linear-algebra-based slice finding for ML model
// debugging. Given an integer-encoded feature matrix X0 and a row-aligned
// non-negative error vector e (derived from a trained model), it finds the
// exact top-K data slices — conjunctions of feature predicates — on which
// the model performs significantly worse than on the whole dataset.
//
// Basic usage:
//
//	ds, _ := sliceline.DatasetFromCSV(file, "label", 10)
//	model, e, _ := sliceline.TrainAndScore(ds, sliceline.TaskClassification)
//	res, _ := sliceline.Run(ds, e, sliceline.Config{K: 5, Alpha: 0.95})
//	for _, s := range res.TopK {
//	    fmt.Println(s)
//	}
//
// The enumeration is exact: the returned slices are guaranteed to be the
// true top-K under the scoring function of the paper (Definition 2), with
// pruning based on size, score upper bounds and missing parents making the
// exponential lattice search practical. Evaluation can be delegated to the
// multi-threaded or distributed backends in internal/dist via
// Config.Evaluator.
package sliceline

import (
	"context"
	"fmt"
	"io"

	"sliceline/internal/core"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
)

// Re-exported core types. See the internal/core documentation for details.
type (
	// Config holds the SliceLine parameters (K, Sigma, Alpha, MaxLevel,
	// BlockSize) and advanced switches.
	Config = core.Config
	// Result is the outcome of a run: the top-K slices plus per-level
	// enumeration statistics.
	Result = core.Result
	// Slice is one found slice with its predicates and statistics.
	Slice = core.Slice
	// Predicate is a single equality predicate of a slice.
	Predicate = core.Predicate
	// LevelStats reports per-lattice-level enumeration characteristics.
	LevelStats = core.LevelStats
	// Snapshot is one anytime-mode progress point: the current top-K plus
	// the certified optimality gap (see WithBudget / WithOnSnapshot).
	Snapshot = core.Snapshot

	// Dataset is an integer-encoded feature matrix with metadata and an
	// optional label vector.
	Dataset = frame.Dataset
	// Feature describes one encoded feature.
	Feature = frame.Feature
)

// Run executes the SliceLine enumeration on a dataset and error vector.
//
// Deprecated: use RunContext, the single entry point; it accepts functional
// options for weights, budgets, observability and checkpointing. Run remains
// supported and delegates there with context.Background().
func Run(ds *Dataset, e []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), ds, e, cfg)
}

// RunWeighted is Run with per-row weights: row i counts as w[i] identical
// rows in every size and error aggregate, so deduplicated datasets with
// multiplicities produce exactly the same top-K as their expanded form.
//
// Deprecated: use RunContext with WithWeights(w).
func RunWeighted(ds *Dataset, e, w []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), ds, e, cfg, WithWeights(w))
}

// RunDiff finds the top slices of model-behavior change between a baseline
// and a new error vector over the same rows: regressions (new model worse,
// Slice.DiffSign = +1) and improvements (DiffSign = -1), interleaved by
// score. Each direction is an ordinary SliceLine run over the rectified
// error delta, so its slices are exactly what RunContext would report over
// max(0, ±(eNew−eBase)). See RunDiffContext for the context-aware form.
func RunDiff(ds *Dataset, eBase, eNew []float64, cfg Config) (*Result, error) {
	return RunDiffContext(context.Background(), ds, eBase, eNew, cfg)
}

// BruteForce exhaustively enumerates the full slice lattice; it is only
// feasible for tiny datasets and exists for verification and education.
func BruteForce(ds *Dataset, e []float64, cfg Config) ([]Slice, error) {
	return core.BruteForce(ds, e, cfg)
}

// SliceRows returns the indices of the dataset rows belonging to a slice,
// for inspecting the offending tuples or sourcing more data for the
// subgroup.
func SliceRows(ds *Dataset, s Slice) ([]int, error) {
	return core.SliceRows(ds, s)
}

// Diversify greedily filters a score-ordered slice list so that no kept
// slice overlaps an earlier kept slice by more than maxJaccard (row-set
// Jaccard similarity). Use it when the raw top-K is dominated by
// near-duplicate refinements of one subgroup.
func Diversify(ds *Dataset, slices []Slice, maxJaccard float64) ([]Slice, error) {
	return core.Diversify(ds, slices, maxJaccard)
}

// DatasetFromCSV reads a CSV stream with a header row, recodes categorical
// columns, bins numeric columns into nBins equi-width bins, and extracts the
// named numeric label column as Y. Columns in drop are skipped.
func DatasetFromCSV(r io.Reader, label string, nBins int, drop ...string) (*Dataset, error) {
	f, err := frame.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return frame.FromFrame(f, label, nBins, drop...)
}

// Task selects the model TrainAndScore fits.
type Task int

// Supported tasks.
const (
	// TaskClassification fits multinomial logistic regression and scores
	// rows with 0/1 inaccuracy.
	TaskClassification Task = iota
	// TaskRegression fits ridge linear regression and scores rows with
	// squared loss.
	TaskRegression
)

// TrainAndScore fits a model of the given task on the dataset's features and
// labels and returns the row-aligned error vector e >= 0 that Run consumes,
// together with a short description of the fitted model. It covers the
// common debugging loop; callers with their own models can pass any
// non-negative error vector to Run directly.
func TrainAndScore(ds *Dataset, task Task) (errVec []float64, desc string, err error) {
	if ds.Y == nil {
		return nil, "", fmt.Errorf("sliceline: dataset %s has no labels", ds.Name)
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, "", err
	}
	switch task {
	case TaskRegression:
		m, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
		if err != nil {
			return nil, "", err
		}
		e := ml.SquaredLoss(ds.Y, m.Predict(enc.X))
		return e, fmt.Sprintf("linear regression (%d weights, %d CG iterations)", len(m.W), m.Iters), nil
	case TaskClassification:
		m, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, "", err
		}
		e := ml.Inaccuracy(ds.Y, m.Predict(enc.X))
		return e, fmt.Sprintf("mlogit (%d classes, accuracy %.3f)", len(m.Classes), m.Accuracy(enc.X, ds.Y)), nil
	default:
		return nil, "", fmt.Errorf("sliceline: unknown task %d", task)
	}
}

// SquaredLoss, Inaccuracy and AbsLoss expose the standard error functions
// for callers that score their own models.
var (
	SquaredLoss = ml.SquaredLoss
	Inaccuracy  = ml.Inaccuracy
	AbsLoss     = ml.AbsLoss
)
